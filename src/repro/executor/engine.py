"""The statement execution engine.

The engine dispatches parsed SQL / A-SQL statements to the storage layer and
the bdbms managers:

* queries run through the annotation-aware operator pipeline of
  :mod:`repro.executor.operators`;
* DML statements pass authorization checks, are logged by the content-based
  approval manager when monitoring is active, and trigger the dependency
  tracker;
* A-SQL annotation statements (CREATE/DROP ANNOTATION TABLE, ADD, ARCHIVE,
  RESTORE) are forwarded to the annotation manager after resolving which
  cells the enclosed statement identifies;
* authorization statements maintain GRANT/REVOKE state and the content
  approval configurations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.annotations.manager import AnnotationManager
from repro.annotations.model import Cell
from repro.authorization.approval import ApprovalManager
from repro.authorization.grants import AccessControl
from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.core.errors import (
    AnnotationError,
    AuthorizationError,
    CatalogError,
    ExecutionError,
    OperationalError,
    PlanningError,
    ProgrammingError,
    TransactionError,
)
from repro.core.transactions import TransactionManager
from repro.dependencies.tracker import DependencyTracker, UpdateImpact
from repro.executor import operators as ops
from repro.executor.row import (
    ColumnInfo,
    OutputSchema,
    ResultSet,
    Row,
    StreamingResultSet,
)
from repro.executor.prepared import (
    CachedPlan,
    PlanCache,
    PreparedStatement,
    bind_plan,
)
from repro.executor.parallel import MaybeParallel, validated_worker_count
from repro.index.manager import IndexManager
from repro.planner import plan as planlib
from repro.providers.manager import ForeignTableManager
from repro.storage.buffer_pool import DecodedCacheView
from repro.storage.spill import SpillManager, SpillStats
from repro.catalog.statistics import DEFAULT_SELECTIVITY
from repro.planner.expressions import Evaluator, contains_aggregate
from repro.planner.planner import (
    combine_conjuncts,
    push_down_conjuncts,
    referenced_columns,
)
from repro.providers.base import option_bool
from repro.provenance.manager import ProvenanceManager
from repro.sql import ast
from repro.sql.parameters import (
    bind_select_clauses,
    bind_statement,
    substitute_parameters,
    validate_parameters,
)
from repro.sql.parser import parse_prepared
from repro.types.datatypes import DataType, parse_timestamp


#: Valid values of ``EngineConfig.execution_mode``: "streaming" is the
#: batched (vectorized) pipeline, "row" the row-at-a-time Volcano pipeline,
#: and "materialized" drains every operator output into a list (the memory
#: and differential baseline).
EXECUTION_MODES = ("streaming", "row", "materialized")

#: Valid values of ``EngineConfig.synchronous``: "full" fsyncs the WAL before
#: a commit is acknowledged (and the data file at sync points); "off" leaves
#: durability to the OS page cache (fast, loses recent commits on power loss).
SYNCHRONOUS_MODES = ("full", "off")


@dataclass
class EngineConfig:
    """Behavioural switches of the engine.

    The mode/strategy/batch knobs are validated eagerly at construction and
    re-validated at the start of every query (they are plain mutable fields),
    so a typo fails with a clear error instead of surfacing halfway through
    an operator pipeline.
    """

    #: Attach system "outdated" annotations to scans of tables that have
    #: outdated cells (Section 5, reporting outdated data in query answers).
    propagate_outdated: bool = True
    #: Enforce GRANT/REVOKE privileges on every statement.
    check_privileges: bool = True
    #: Storage scheme used by CREATE ANNOTATION TABLE ("compact" or "naive").
    default_annotation_scheme: str = "compact"
    #: Automatically record provenance for INSERT statements.
    auto_provenance: bool = False
    #: Join planning mode: "auto" picks per-edge via statistics and available
    #: indexes; "hash", "merge" and "index_nested_loop" force that strategy
    #: where applicable; "nested_loop" reproduces the naive cross-product
    #: pipeline and is the differential baseline.
    join_strategy: str = "auto"
    #: In "auto" mode, prefer sort-merge over hash once the estimated build
    #: side exceeds this many rows (grace-hash stand-in).
    hash_join_max_build_rows: int = 4_000_000
    #: Operator pipeline mode: "streaming" (batched vectorized iterators —
    #: the default), "row" (row-at-a-time iterators, the pre-batching
    #: pipeline kept as the streaming baseline), or "materialized" (every
    #: operator output drained into a list — the memory-profile baseline for
    #: benchmarks and differential tests).  LIMIT short-circuits the scan in
    #: both streaming modes.
    execution_mode: str = "streaming"
    #: Let the planner pick index access paths (index point scans, B-tree
    #: range scans, and index-nested-loop joins) from the registered
    #: secondary indexes.
    use_indexes: bool = True
    #: Rows per batch in the vectorized pipeline.  Batches ramp up from one
    #: row to this size so early-stopping consumers stay cheap; 1 degrades
    #: to per-row batches (useful for differential testing).
    batch_size: int = 1024
    #: Maximum rows a pipeline breaker (hash-join build, GROUP BY, DISTINCT,
    #: sort) may buffer in memory before spilling to temp files.  ``None``
    #: (the default) keeps every breaker fully in memory.  The budget is
    #: per-operator and approximate: it may be overshot by up to one batch,
    #: and a single over-represented key's rows must still fit in memory.
    memory_budget_rows: Optional[int] = None
    #: Directory for spill temp files (``None`` = the platform temp dir).
    spill_directory: Optional[str] = None
    #: Capacity of the engine's prepared-plan cache (entries; one entry per
    #: SELECT block of a prepared statement under one config fingerprint).
    #: ``0`` disables plan caching — prepared statements then still skip
    #: tokenize + parse but re-plan on every execution.
    plan_cache_size: int = 128
    #: Durability mode of file-backed databases: "full" fsyncs the WAL before
    #: acknowledging a commit, "off" trusts the OS page cache.  Ignored (no
    #: WAL) for in-memory databases.
    synchronous: str = "full"
    #: Batch concurrent committers into one WAL fsync (group commit).  With
    #: it off every commit pays its own fsync.
    group_commit: bool = True
    #: Worker threads for intra-query parallelism over *spill partitions*
    #: (Grace hash-join partitions, spilled GROUP BY / DISTINCT partitions,
    #: external-sort runs).  ``0`` (the default) and ``1`` run serially on
    #: the calling thread; ``N >= 2`` fans partitions out over a bounded
    #: thread pool.  Output values, row order, and annotation identity are
    #: identical at every worker count.
    parallel_workers: int = 0
    #: Pages held by the buffer pool's decoded-record cache (decoded tuple
    #: lists keyed by ``(table, page, schema version)``), letting repeated
    #: scans skip record deserialization.  ``0`` (the default) disables the
    #: cache.
    decoded_page_cache_pages: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def fingerprint(self) -> Tuple[Any, ...]:
        """All config values, as the plan-cache key component.

        Any field may influence planning or staging (join strategy, index
        usage, memory budget, batch size...), so the whole config
        participates: executing the same SQL under a different configuration
        plans afresh instead of reusing a plan built for other knobs.
        """
        return tuple(getattr(self, name) for name in _CONFIG_FIELD_NAMES)

    def validate(self) -> None:
        """Reject unknown modes/strategies and bad batch sizes eagerly."""
        if self.execution_mode not in EXECUTION_MODES:
            raise PlanningError(
                f"unknown execution mode {self.execution_mode!r}; "
                f"expected one of {EXECUTION_MODES}")
        if self.join_strategy not in planlib.JOIN_STRATEGIES:
            raise PlanningError(
                f"unknown join strategy {self.join_strategy!r}; "
                f"expected one of {planlib.JOIN_STRATEGIES}")
        if not isinstance(self.batch_size, int) or isinstance(self.batch_size, bool) \
                or self.batch_size <= 0:
            raise PlanningError(
                f"batch_size must be a positive integer, got {self.batch_size!r}")
        if self.memory_budget_rows is not None and (
                not isinstance(self.memory_budget_rows, int)
                or isinstance(self.memory_budget_rows, bool)
                or self.memory_budget_rows <= 0):
            raise PlanningError(
                f"memory_budget_rows must be a positive integer or None, "
                f"got {self.memory_budget_rows!r}")
        if not isinstance(self.plan_cache_size, int) \
                or isinstance(self.plan_cache_size, bool) \
                or self.plan_cache_size < 0:
            raise PlanningError(
                f"plan_cache_size must be a non-negative integer, "
                f"got {self.plan_cache_size!r}")
        if self.synchronous not in SYNCHRONOUS_MODES:
            raise PlanningError(
                f"unknown synchronous mode {self.synchronous!r}; "
                f"expected one of {SYNCHRONOUS_MODES}")
        try:
            validated_worker_count(self.parallel_workers)
        except ValueError as exc:
            raise PlanningError(str(exc)) from None
        if not isinstance(self.decoded_page_cache_pages, int) \
                or isinstance(self.decoded_page_cache_pages, bool) \
                or self.decoded_page_cache_pages < 0:
            raise PlanningError(
                f"decoded_page_cache_pages must be a non-negative integer, "
                f"got {self.decoded_page_cache_pages!r}")


#: Field names of :class:`EngineConfig`, resolved once — ``fingerprint()``
#: runs per prepared execution and must not pay dataclass reflection.
_CONFIG_FIELD_NAMES = tuple(f.name for f in fields(EngineConfig))


@dataclass
class ExecutionSummary:
    """Result of a non-query statement."""

    statement: str
    rows_affected: int = 0
    message: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ExecutionSummary({self.statement}, rows={self.rows_affected})"


ExecutionResult = Union[ResultSet, ExecutionSummary]

#: Statements the engine wraps in a transaction scope: inside an explicit
#: transaction their effects buffer until COMMIT; otherwise each one runs as
#: an autocommitted transaction of its own (atomic, immediately durable).
_MUTATING_STATEMENTS = (
    ast.CreateTable, ast.DropTable, ast.CreateIndex, ast.DropIndex,
    ast.Insert, ast.Update, ast.Delete,
    ast.CreateAnnotationTable, ast.DropAnnotationTable,
    ast.AddAnnotation, ast.ArchiveAnnotation, ast.RestoreAnnotation,
    ast.Grant, ast.Revoke,
    ast.StartContentApproval, ast.StopContentApproval,
    ast.Attach, ast.Detach,
)


class _PreparedContext:
    """Per-execution state of a prepared run: bound values + cache keying."""

    __slots__ = ("sql", "params", "fingerprint", "_block")

    def __init__(self, sql: str, params: Tuple[Any, ...],
                 fingerprint: Tuple[Any, ...]):
        self.sql = sql
        self.params = params
        self.fingerprint = fingerprint
        self._block = 0

    def next_block(self) -> int:
        """Ordinal of the next SELECT block (compound queries plan several
        blocks per statement; recursion order is deterministic, so the
        ordinal disambiguates them within one SQL text)."""
        block = self._block
        self._block += 1
        return block


class _QueryLocal(threading.local):
    """Per-thread query state: the ``last_*`` observability fields plus the
    prepared-execution context.  ``threading.local`` re-runs ``__init__`` in
    every thread that first touches an attribute, so each worker starts from
    clean defaults instead of inheriting another thread's query."""

    def __init__(self) -> None:
        self.last_plan: Optional[planlib.PlanNode] = None
        self.last_sort_elided = False
        self.last_spill = SpillStats()
        #: Built lazily by the engine property (needs the catalog's pool).
        self.last_cache: Optional[DecodedCacheView] = None
        self.last_plan_cached = False
        self.prepared_context: Optional[_PreparedContext] = None


class Engine:
    """Executes AST statements against the catalog and the bdbms managers."""

    def __init__(self, catalog: SystemCatalog, annotations: AnnotationManager,
                 provenance: ProvenanceManager, tracker: DependencyTracker,
                 approval: ApprovalManager, access: AccessControl,
                 indexes: Optional[IndexManager] = None,
                 config: Optional[EngineConfig] = None,
                 transactions: Optional[TransactionManager] = None,
                 foreign: Optional[ForeignTableManager] = None):
        self.catalog = catalog
        self.annotations = annotations
        self.provenance = provenance
        self.tracker = tracker
        self.approval = approval
        self.access = access
        self.indexes = indexes or IndexManager(catalog)
        self.config = config or EngineConfig()
        self.transactions = transactions or TransactionManager(
            catalog=catalog, annotations=annotations, indexes=self.indexes,
            tracker=tracker, access=access, pool=catalog.pool, wal=None)
        if catalog.journal is None:
            catalog.journal = self.transactions
        #: Attached foreign tables (ATTACH/DETACH); journaled through the
        #: transaction manager so they redo from the WAL like DDL.
        self.foreign = foreign or ForeignTableManager(catalog)
        if self.transactions.foreign is None:
            self.transactions.foreign = self.foreign
        if self.foreign.journal is None:
            self.foreign.journal = self.transactions
        #: Per-thread observability surfaces (``last_plan`` and friends) plus
        #: the prepared-execution context.  Thread-local because the network
        #: server runs concurrent statements on pooled worker threads over
        #: one shared engine: without isolation, thread A's EXPLAIN could
        #: read the plan of thread B's query, and worse, B's bound
        #: parameters could leak into A's statement.
        self._query_local = _QueryLocal()
        #: The cached worker facade behind spill-partition parallelism.  One
        #: pool lives across queries (thread startup is not free) and is
        #: recreated only when ``config.parallel_workers`` changes.
        self._parallel: Optional[MaybeParallel] = None
        #: Prepared-plan cache keyed on (SQL text, SELECT-block ordinal,
        #: EngineConfig fingerprint), invalidated by the catalog schema
        #: version (see :class:`~repro.executor.prepared.PlanCache`).
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        #: Serializes the prepared planning/binding window.  The operator
        #: pipeline itself runs outside this lock; planning touches shared
        #: mutable state (plan cache validation against statistics, which may
        #: auto-ANALYZE and bump the schema version), so concurrent prepared
        #: executions take turns through the planner only.
        self._prepared_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Per-thread observability surface.
    #
    # ``last_plan`` — plan tree of this thread's most recently planned
    # SELECT (used by EXPLAIN, tests, and benchmarks).
    # ``last_sort_elided`` — whether its ORDER BY was satisfied by index
    # order (sort elision) instead of an explicit sort.
    # ``last_spill`` — spill activity (partition/run counts, row/byte
    # counters); updated while rows drain, so a streaming consumer sees
    # final numbers once the stream is exhausted.
    # ``last_cache`` — per-query window over the buffer pool's decoded-page
    # cache statistics; also counts while a stream drains.
    # ``last_plan_cached`` — whether the most recent SELECT reused a cached
    # plan (``last_plan`` then *is* the identity-stable cached template).
    # ------------------------------------------------------------------
    @property
    def last_plan(self) -> Optional[planlib.PlanNode]:
        return self._query_local.last_plan

    @last_plan.setter
    def last_plan(self, value: Optional[planlib.PlanNode]) -> None:
        self._query_local.last_plan = value

    @property
    def last_sort_elided(self) -> bool:
        return self._query_local.last_sort_elided

    @last_sort_elided.setter
    def last_sort_elided(self, value: bool) -> None:
        self._query_local.last_sort_elided = value

    @property
    def last_spill(self) -> SpillStats:
        return self._query_local.last_spill

    @last_spill.setter
    def last_spill(self, value: SpillStats) -> None:
        self._query_local.last_spill = value

    @property
    def last_cache(self) -> DecodedCacheView:
        view = self._query_local.last_cache
        if view is None:
            view = DecodedCacheView(self.catalog.pool.decoded.stats)
            self._query_local.last_cache = view
        return view

    @last_cache.setter
    def last_cache(self, value: DecodedCacheView) -> None:
        self._query_local.last_cache = value

    @property
    def last_plan_cached(self) -> bool:
        return self._query_local.last_plan_cached

    @last_plan_cached.setter
    def last_plan_cached(self, value: bool) -> None:
        self._query_local.last_plan_cached = value

    @property
    def _prepared_context(self) -> Optional["_PreparedContext"]:
        return self._query_local.prepared_context

    @_prepared_context.setter
    def _prepared_context(self, value: Optional["_PreparedContext"]) -> None:
        self._query_local.prepared_context = value

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, statement: Any, user: str = "admin") -> ExecutionResult:
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self.execute_query(statement, user)
        if isinstance(statement, ast.Begin):
            self.transactions.begin()
            return ExecutionSummary("BEGIN", message="transaction started")
        if isinstance(statement, ast.Commit):
            if not self.transactions.commit():
                raise TransactionError("COMMIT: no transaction is active")
            return ExecutionSummary("COMMIT", message="transaction committed")
        if isinstance(statement, ast.Rollback):
            if not self.transactions.rollback():
                raise TransactionError("ROLLBACK: no transaction is active")
            return ExecutionSummary("ROLLBACK", message="transaction rolled back")
        if isinstance(statement, _MUTATING_STATEMENTS):
            with self.transactions.statement(statement):
                return self._dispatch(statement, user)
        return self._dispatch(statement, user)

    def _dispatch(self, statement: Any, user: str) -> ExecutionResult:
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement, user)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement, user)
        if isinstance(statement, ast.CreateIndex):
            return self._create_index(statement, user)
        if isinstance(statement, ast.DropIndex):
            return self._drop_index(statement, user)
        if isinstance(statement, ast.Insert):
            return self._insert(statement, user)
        if isinstance(statement, ast.Update):
            return self._update(statement, user)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, user)
        if isinstance(statement, ast.CreateAnnotationTable):
            return self._create_annotation_table(statement, user)
        if isinstance(statement, ast.DropAnnotationTable):
            return self._drop_annotation_table(statement, user)
        if isinstance(statement, ast.AddAnnotation):
            return self._add_annotation(statement, user)
        if isinstance(statement, ast.ArchiveAnnotation):
            return self._archive_restore(statement, user, archive=True)
        if isinstance(statement, ast.RestoreAnnotation):
            return self._archive_restore(statement, user, archive=False)
        if isinstance(statement, ast.Grant):
            return self._grant(statement, user)
        if isinstance(statement, ast.Revoke):
            return self._revoke(statement, user)
        if isinstance(statement, ast.StartContentApproval):
            return self._start_approval(statement, user)
        if isinstance(statement, ast.StopContentApproval):
            return self._stop_approval(statement, user)
        if isinstance(statement, ast.Attach):
            return self._attach(statement, user)
        if isinstance(statement, ast.Detach):
            return self._detach(statement, user)
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement, user)
        if isinstance(statement, ast.Explain):
            return self._explain(statement, user)
        raise ExecutionError(f"cannot execute statement of type {type(statement).__name__}")

    # ------------------------------------------------------------------
    # Privileges
    # ------------------------------------------------------------------
    def _check(self, user: str, privilege: str, table: str) -> None:
        if self.config.check_privileges:
            self.access.check(user, privilege, table)

    def _check_admin(self, user: str, action: str) -> None:
        if self.config.check_privileges and not self.access.is_superuser(user):
            raise AuthorizationError(f"only a superuser may {action}")

    # ------------------------------------------------------------------
    # Prepared statements
    # ------------------------------------------------------------------
    def prepare(self, sql: str) -> PreparedStatement:
        """Parse ``sql`` once into a reusable :class:`PreparedStatement`.

        Counts the qmark placeholders and rejects statement types that
        cannot carry parameters; a multi-statement string raises
        :class:`ProgrammingError` (from the parser) pointing at scripts.
        """
        if not isinstance(sql, str):
            raise ProgrammingError(
                f"SQL must be a string, got {type(sql).__name__}")
        statement, parameter_count = parse_prepared(sql)
        if parameter_count and not isinstance(
                statement, (ast.Select, ast.SetOperation, ast.Insert,
                            ast.Update, ast.Delete, ast.Explain)):
            raise ProgrammingError(
                f"parameter placeholders are not supported in "
                f"{type(statement).__name__} statements")
        return PreparedStatement(sql, statement, parameter_count)

    def execute_prepared(self, prepared: PreparedStatement,
                         params: Sequence[Any] = (),
                         user: str = "admin") -> ExecutionResult:
        """Execute a prepared statement with ``params`` bound.

        Parameter count and types are validated eagerly.  Queries run with
        the plan cache engaged (plan once per SQL text + config fingerprint,
        rebind values per execution); DML binds the values into the
        statement and executes directly.
        """
        if isinstance(prepared.statement, ast.Explain):
            # Generic-plan EXPLAIN: the statement is planned, never executed,
            # so placeholders stay unbound and render as ?N markers.  Bound
            # values, when supplied, are validated but unused.
            if params:
                validate_parameters(params, prepared.parameter_count)
            return self.execute(prepared.statement, user=user)
        bound_params = validate_parameters(params, prepared.parameter_count)
        if not prepared.is_query:
            return self.execute(bind_statement(prepared.statement, bound_params),
                                user=user)
        with self._prepared_lock:
            previous = self._prepared_context
            self._prepared_context = _PreparedContext(
                prepared.sql, bound_params, self.config.fingerprint())
            try:
                return self.execute_query(prepared.statement, user)
            finally:
                self._prepared_context = previous

    def stream_prepared(self, prepared: PreparedStatement,
                        params: Sequence[Any] = (),
                        user: str = "admin") -> StreamingResultSet:
        """Like :meth:`execute_prepared` but returns a lazy row stream.

        Planning (or a plan-cache hit), privilege checks, and parameter
        binding all happen eagerly; only row production is deferred.
        """
        bound_params = validate_parameters(params, prepared.parameter_count)
        if not prepared.is_query:
            raise ProgrammingError(
                f"statement is not a query: {prepared.sql!r}")
        # Planning + binding happen eagerly inside the lock; the returned
        # stream produces rows lazily outside it.
        with self._prepared_lock:
            previous = self._prepared_context
            self._prepared_context = _PreparedContext(
                prepared.sql, bound_params, self.config.fingerprint())
            try:
                return self.stream_query(prepared.statement, user)
            finally:
                self._prepared_context = previous

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def execute_query(self, node: Any, user: str = "admin") -> ResultSet:
        self._begin_query()
        schema, rows = ops.materialize(self._evaluate_query(node, user))
        return ResultSet(schema, rows)

    def stream_query(self, node: Any, user: str = "admin") -> StreamingResultSet:
        """Build the operator pipeline but defer row production to the caller.

        Planning, privilege checks, and expression compilation happen
        eagerly; rows are computed only as the returned stream is consumed,
        so an early-stopping consumer never pays for the full scan.
        """
        self._begin_query()
        schema, rows = self._evaluate_query(node, user)
        return StreamingResultSet(schema, rows)

    def _begin_query(self) -> None:
        """Reset the per-query observability surfaces and sync the decoded
        cache capacity with the (mutable) config knob."""
        self.last_spill = SpillStats()
        decoded = self.catalog.pool.decoded
        decoded.set_capacity(self.config.decoded_page_cache_pages)
        self.last_cache = DecodedCacheView(decoded.stats)

    def _parallel_pool(self) -> MaybeParallel:
        """The engine-wide worker facade, rebuilt on a knob change.

        Worker threads persist across queries; changing
        ``config.parallel_workers`` shuts the old pool down (waiting for any
        straggling tasks) and starts fresh.
        """
        workers = self.config.parallel_workers
        parallel = self._parallel
        if parallel is None or parallel.workers != workers:
            if parallel is not None:
                parallel.shutdown()
            parallel = MaybeParallel(workers)
            self._parallel = parallel
        return parallel

    def _spill_manager(self) -> Optional[SpillManager]:
        """A spill coordinator, or ``None`` without a budget.

        One manager is created per SELECT block (and per set operation in a
        compound query) — each with its own annotation registry, which is
        fine because spill files only ever read through the manager that
        wrote them.  What *is* shared query-wide is the stats object,
        ``self.last_spill``: every manager reports into it.
        """
        budget = self.config.memory_budget_rows
        if budget is None:
            return None
        return SpillManager(budget, stats=self.last_spill,
                            directory=self.config.spill_directory,
                            parallel=self._parallel_pool())

    def _stage(self, relation: ops.Relation) -> ops.Relation:
        """Adapt one pipeline stage's output to the configured execution mode.

        ``materialized`` drains the stage into a list; ``streaming`` (the
        batched mode) re-chunks row-producing stages into batches so that
        pipeline breakers *produce* batches at their boundary and downstream
        vectorized operators stay on the batch path; ``row`` passes the lazy
        row iterator through untouched.
        """
        mode = self.config.execution_mode
        if mode == "materialized":
            return ops.materialize(relation)
        if mode == "streaming":
            return ops.ensure_batched(relation, self.config.batch_size)
        return relation

    def _evaluate_query(self, node: Any, user: str) -> ops.Relation:
        if isinstance(node, ast.SetOperation):
            left = self._evaluate_query(node.left, user)
            right = self._evaluate_query(node.right, user)
            if node.op == "UNION":
                return ops.union(left, right, keep_all=node.all,
                                 spill=self._spill_manager())
            if node.op == "INTERSECT":
                return ops.intersect(left, right,
                                     spill=self._spill_manager())
            return ops.except_(left, right, spill=self._spill_manager())
        if isinstance(node, ast.Select):
            return self._evaluate_select(node, user)
        raise ExecutionError(f"not a query: {type(node).__name__}")

    @staticmethod
    def _select_has_aggregates(select: ast.Select) -> bool:
        return bool(select.group_by) or any(
            not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
            for item in select.items
        )

    def _evaluate_select(self, select: ast.Select, user: str) -> ops.Relation:
        self.config.validate()
        stage = self._stage
        # SELECT without FROM: evaluate the items against a single empty row
        # (binding parameters first — ``SELECT ?`` is a legitimate probe).
        if not select.from_tables:
            self.last_plan_cached = False   # no plan involved at all
            context = self._prepared_context
            if context is not None and context.params:
                select = bind_select_clauses(select, context.params)
            relation: ops.Relation = (OutputSchema([]), [Row(())])
            return ops.project(relation, select.items)

        table_refs = list(select.from_tables) + [join.table for join in select.joins]
        for ref in table_refs:
            self._check(user, "SELECT", ref.name)

        plan, _pushed, remaining, order_hint = self._plan_with_cache(select,
                                                                     table_refs)
        # ``last_plan`` is the (possibly cached) template: identity-stable
        # across cached executions, with parameter placeholders intact.
        self.last_plan = plan
        context = self._prepared_context
        if context is not None and context.params:
            # Bind this execution's values: a substituted copy of the plan
            # tree and of the post-planning clauses.  The cached template is
            # never mutated, so the next execution rebinds from it.
            plan = bind_plan(plan, context.params)
            remaining = [substitute_parameters(conjunct, context.params)
                         for conjunct in remaining]
            select = bind_select_clauses(select, context.params)
        has_aggregates = self._select_has_aggregates(select)
        # Sort elision: the plan already delivers rows in the requested
        # order (an ordered index scan surviving the left spine of
        # order-preserving joins), so ORDER BY needs no sort operator.
        # With a memory budget, hash joins may spill adaptively — which
        # reorders the probe side — so order never propagates through them.
        elide_sort = (bool(select.order_by) and not has_aggregates
                      and order_hint is not None
                      and planlib.plan_delivered_order(
                          plan, self._order_through_hash()) == order_hint)
        self.last_sort_elided = elide_sort

        refs = {ref.effective_name.lower(): ref for ref in table_refs}
        spill = self._spill_manager()
        relation = self._execute_plan(plan, refs,
                                      scan_cap=self._scan_cap(select, plan,
                                                              remaining),
                                      spill=spill)
        # Join reordering may have permuted the column blocks; restore the
        # syntactic FROM order so SELECT * stays deterministic.
        relation = self._restore_from_order(relation, table_refs)

        residual_expr = combine_conjuncts(remaining)
        if residual_expr is not None:
            relation = stage(ops.filter_rows(relation, residual_expr))
        if select.awhere is not None:
            relation = stage(ops.awhere_filter(relation, select.awhere))

        input_rows_hint = plan.estimated_rows
        if has_aggregates:
            relation = stage(ops.group_and_aggregate(
                relation, select.group_by, select.items, select.having,
                select.ahaving, spill=spill, input_rows_hint=input_rows_hint))
            if select.filter is not None:
                relation = stage(ops.filter_annotations(relation, select.filter))
        else:
            if select.having is not None or select.ahaving is not None:
                raise PlanningError("HAVING/AHAVING require GROUP BY or aggregates")
            if select.filter is not None:
                relation = stage(ops.filter_annotations(relation, select.filter))
            # ORDER BY may reference columns that are not projected (e.g.
            # ``SELECT name ... ORDER BY score``): sort before projecting when
            # the sort keys resolve against the full relation, and fall back
            # to sorting the projected output (for aliases) otherwise.
            ordered_early = False
            if select.order_by and not elide_sort:
                try:
                    relation = stage(ops.order_by(relation, select.order_by,
                                                  spill=spill))
                    ordered_early = True
                except PlanningError:
                    ordered_early = False
            relation = stage(ops.project(relation, select.items))
            if select.order_by and not ordered_early and not elide_sort:
                relation = stage(ops.order_by(relation, select.order_by,
                                              spill=spill))
            if select.distinct:
                relation = stage(ops.distinct(relation, spill=spill,
                                              input_rows_hint=input_rows_hint))
            if select.limit is not None or select.offset is not None:
                relation = stage(ops.limit_offset(relation, select.limit,
                                                  select.offset))
            return relation

        if select.distinct:
            relation = stage(ops.distinct(
                relation, spill=spill,
                input_rows_hint=self._estimated_group_rows(select, plan,
                                                           table_refs)))
        if select.order_by:
            relation = stage(ops.order_by(relation, select.order_by, spill=spill))
        if select.limit is not None or select.offset is not None:
            relation = stage(ops.limit_offset(relation, select.limit, select.offset))
        return relation

    def _plan_with_cache(self, select: ast.Select,
                         table_refs: Sequence[ast.TableRef],
                         ) -> Tuple[planlib.PlanNode,
                                    Dict[str, List[ast.Expression]],
                                    List[ast.Expression],
                                    Optional[Tuple[str, str, str]]]:
        """:meth:`_plan_select`, memoized for prepared executions.

        Outside a prepared run (or with ``plan_cache_size = 0``) this is a
        plain pass-through.  Within one, the result is cached per (SQL text,
        SELECT-block ordinal, config fingerprint) and validated against the
        catalog schema version; on a hit the plan's base tables are poked
        for statistics staleness first, so enough DML since planning
        triggers auto-ANALYZE — which bumps the version and forces a
        re-plan instead of trusting stale estimates forever.
        """
        context = self._prepared_context
        cache = self.plan_cache
        cache.capacity = self.config.plan_cache_size
        if context is None or self.config.plan_cache_size <= 0:
            self.last_plan_cached = False
            return self._plan_select(select, table_refs)
        key = (context.sql, context.next_block(), context.fingerprint)
        entry = cache.lookup(key, self.catalog.schema_version)
        if entry is not None:
            statistics = self.catalog.statistics
            for table in entry.tables:
                if self.catalog.has_table(table):
                    statistics.stats_for(table)
            if self.catalog.schema_version == entry.schema_version \
                    and self._range_scan_gates_hold(entry.plan):
                cache.note_hit()
                self.last_plan_cached = True
                return (entry.plan, entry.pushed, list(entry.remaining),
                        entry.order_hint)
            cache.discard(key)
        cache.note_miss()
        self.last_plan_cached = False
        plan, pushed, remaining, order_hint = self._plan_select(select,
                                                                table_refs)
        cache.store(key, CachedPlan(
            self.catalog.schema_version, plan, pushed, list(remaining),
            order_hint, tables=tuple(sorted({ref.name for ref in table_refs}))))
        return plan, pushed, remaining, order_hint

    def _range_scan_gates_hold(self, plan: planlib.PlanNode) -> bool:
        """Re-check a cached plan's index-range completeness proofs.

        ``choose_index_range`` only picks an ordered/unbounded key-order
        scan (and lower-bound-only ranges) after proving no qualifying row
        is missing from the index (``null_keys``/``nan_keys`` gates).  That
        proof is *data*-dependent: a later INSERT of a NULL- or NaN-keyed
        row breaks it without any schema change, and DML deliberately does
        not bump the schema version.  So a cache hit re-validates the gates
        against the live counters and forces a re-plan when they no longer
        hold — otherwise the cached scan would silently drop those rows.
        Index lookups need no re-check: an equality probe can never match a
        NULL row, and a non-NaN key can never match a NaN row.
        """
        if isinstance(plan, planlib.JoinPlan):
            return (self._range_scan_gates_hold(plan.left)
                    and self._range_scan_gates_hold(plan.right))
        if plan.access_path != "index_range" or plan.index_name is None:
            return True
        try:
            index = self.indexes.get(plan.index_name)
        except Exception:
            return False
        bounded = plan.range_low is not None or plan.range_high is not None
        if bounded and plan.range_high is None and index.nan_keys > 0:
            return False  # NaN rows satisfy a lower-bound-only range
        if not bounded and (index.null_keys > 0 or index.nan_keys > 0):
            return False  # full key-order scan must cover every row
        return True

    def _scan_cap(self, select: ast.Select, plan: planlib.PlanNode,
                  remaining: Sequence[ast.Expression]) -> Optional[int]:
        """Limit pushdown: cap a bare single-table scan at LIMIT+OFFSET rows.

        Only safe when nothing between the scan and the LIMIT can drop,
        reorder, or group rows: no joins, no pushed or residual predicates,
        no annotation predicates, no aggregation/DISTINCT, and no ORDER BY.
        The batched scan then never reads past the cap, keeping LIMIT's
        scanned-row guarantee exact even at full batch size.
        """
        if select.limit is None or select.joins or len(select.from_tables) != 1:
            return None
        if remaining or select.awhere is not None or select.filter is not None:
            return None
        if select.order_by or select.distinct or self._select_has_aggregates(select):
            return None
        if not isinstance(plan, planlib.ScanPlan) or plan.pushed:
            return None
        return select.limit + (select.offset or 0)

    def _row_source(self, ref: ast.TableRef,
                    include_tuple_id: bool = False) -> ops.TableRowSource:
        """Annotation-attaching row access for one FROM-list table."""
        table = self.catalog.table(ref.name)
        propagation_index = None
        if ref.annotation_tables:
            propagation_index = self.annotations.propagation_index(
                table.name, ref.annotation_tables
            )
        status = None
        if self.config.propagate_outdated:
            status_map = self.tracker.status_annotations(table.name)
            status = status_map if status_map else None
        return ops.TableRowSource(table, ref.effective_name, propagation_index,
                                  status, include_tuple_id)

    def _scan(self, ref: ast.TableRef, node: planlib.ScanPlan,
              scan_cap: Optional[int] = None) -> ops.Relation:
        """Execute one scan leaf along its planned access path."""
        if isinstance(node, planlib.ForeignScanPlan):
            return self._foreign_scan(ref, node, scan_cap)
        source = self._row_source(ref)
        batched = self.config.execution_mode == "streaming"
        if node.access_path == "index_lookup" and node.index_name is not None \
                and self._index_key_safe(node):
            index = self.indexes.get(node.index_name)
            relation = ops.index_scan(source, index.structure, node.index_key)
        elif node.access_path == "index_range" and node.index_name is not None:
            index = self.indexes.get(node.index_name)
            order_position = None
            if node.ordered and node.index_columns:
                order_position = source.schema.try_resolve(node.index_columns[0])
            relation = ops.index_range_scan(
                source, index.structure, node.range_low, node.range_high,
                node.range_include_low, node.range_include_high,
                batch_size=self.config.batch_size if batched else None,
                order_position=order_position,
                descending=node.descending)
        elif batched:
            relation = source.batched_relation(self.config.batch_size, scan_cap)
        else:
            relation = source.relation()
        # The full pushed-conjunct list is applied even on an index access
        # path: the index only pins the key columns (and a range scan may be
        # wider than the predicate), everything else filters on top.
        pushdown = combine_conjuncts(node.pushed)
        if pushdown is not None:
            relation = ops.filter_rows(relation, pushdown)
        return self._stage(relation)

    def _foreign_scan(self, ref: ast.TableRef, node: planlib.ForeignScanPlan,
                      scan_cap: Optional[int] = None) -> ops.Relation:
        """Execute a foreign-table scan leaf through its provider.

        The provider receives the projected columns and (when pushdown is
        on) the pushed conjuncts, but the pushdown contract is advisory: the
        engine re-applies the full conjunct list on top, so a provider that
        filters lazily — or not at all — stays correct, just slower.
        ``scan_cap`` is only ever non-None for plans without pushed
        conjuncts (see :meth:`_scan_cap`), so capping at the source is safe.
        """
        relation = self.foreign.scan(
            node.table, ref.effective_name,
            columns=list(node.projected) or None,
            pushed=list(node.pushed) if node.pushdown else [],
            limit=scan_cap,
            batch_size=self.config.batch_size)
        pushdown = combine_conjuncts(node.pushed)
        if pushdown is not None:
            relation = ops.filter_rows(relation, pushdown)
        return self._stage(relation)

    def _foreign_projection(self, select: ast.Select, table: str,
                            qualifiers: Sequence[str]) -> Tuple[str, ...]:
        """Columns of foreign ``table`` this query can touch (``()`` = all).

        Over-inclusion is safe (extra transfer); under-inclusion would break
        the engine-side re-check of pushed filters, so anything that cannot
        be proven column-precise — ``SELECT *``, annotation predicates whose
        column coverage the walker cannot see — projects every column.
        """
        if select.filter is not None or select.awhere is not None \
                or select.ahaving is not None:
            return ()
        columns = {name.lower() for name in self.foreign.column_names(table)}
        qualifier_set = {qualifier.lower() for qualifier in qualifiers}
        needed: Set[str] = set()

        def note(expr: Optional[ast.Expression]) -> bool:
            """Collect refs; False when a Star makes the set unprovable."""
            if expr is None:
                return True
            if isinstance(expr, ast.Star):
                return False
            for column_ref in referenced_columns(expr):
                name = column_ref.name.lower()
                if column_ref.table is not None:
                    if column_ref.table.lower() in qualifier_set:
                        needed.add(name)
                elif name in columns:
                    # Unqualified: it *could* resolve here — include it.
                    needed.add(name)
            return True

        exprs: List[Optional[ast.Expression]] = [select.where, select.having]
        exprs.extend(item.expr for item in select.items)
        exprs.extend(column_ref for item in select.items
                     for column_ref in item.promote)
        exprs.extend(join.condition for join in select.joins)
        exprs.extend(item.expr for item in select.order_by)
        exprs.extend(select.group_by)
        for expr in exprs:
            if not note(expr):
                return ()
        projected = tuple(sorted(needed & columns))
        if not projected or len(projected) == len(columns):
            return ()
        return projected

    def _index_key_safe(self, node: planlib.ScanPlan) -> bool:
        """Whether an index-lookup key may be probed into the structure.

        Bind-time keys (from parameters) can hold values a plan-time literal
        never could: NULL (equality never matches, and the B-tree cannot
        compare it), NaN (excluded from the structure at insert), or a value
        whose type category differs from the indexed column's (the B-tree
        bisect would compare across categories).  Any of those falls back to
        a sequential scan — the full pushed conjunct list is re-applied on
        top of every access path, so the fallback stays correct.
        """
        key = node.index_key
        components = key if isinstance(key, tuple) else (key,)
        for column, value in zip(node.index_columns, components):
            if value is None:
                return False
            if isinstance(value, float) and value != value:
                return False
            category = planlib._literal_category(value)
            if category is None:
                return False
            expected = self._column_category(node.table, column)
            if expected is not None and expected != category:
                return False
        return True

    def _column_category(self, table_name: str,
                         column: str) -> Optional[str]:
        """Coarse type category ("num"/"text"/"time") of a column (base or
        attached foreign)."""
        try:
            if self.foreign.has(table_name):
                schema = self.foreign.table(table_name).schema
            else:
                schema = self.catalog.table(table_name).schema
            dtype = schema.column(column).dtype
        except Exception:
            return None
        return self._TYPE_CATEGORIES.get(dtype)

    # ------------------------------------------------------------------
    # Join planning and plan execution
    # ------------------------------------------------------------------
    _TYPE_CATEGORIES = {
        DataType.INTEGER: "num", DataType.FLOAT: "num", DataType.BOOLEAN: "num",
        DataType.TEXT: "text", DataType.SEQUENCE: "text", DataType.XML: "text",
        DataType.TIMESTAMP: "time",
    }

    def _resolvable_columns(self, table_refs: Sequence[ast.TableRef],
                            ) -> Dict[str, Set[str]]:
        """Lower-cased column names per qualifier, base or foreign."""
        resolvable: Dict[str, Set[str]] = {}
        for ref in table_refs:
            if self.foreign.has(ref.name):
                names = self.foreign.column_names(ref.name)
            else:
                names = self.catalog.table(ref.name).schema.column_names
            resolvable[ref.effective_name.lower()] = {
                name.lower() for name in names}
        return resolvable

    def _plan_select(self, select: ast.Select, table_refs: Sequence[ast.TableRef],
                     ) -> Tuple[planlib.PlanNode, Dict[str, List[ast.Expression]],
                                List[ast.Expression],
                                Optional[Tuple[str, str, str]]]:
        """Pushdown + cost-based join planning for one SELECT block.

        Returns the plan tree, the per-qualifier pushed conjuncts, the
        residual conjuncts still to be filtered after the joins, and the
        interesting order (lower-cased ``(qualifier, column, direction)`` of
        a single ORDER BY key) the planner was asked to deliver.
        """
        resolvable = self._resolvable_columns(table_refs)
        pushed, residual = push_down_conjuncts(select.where, table_refs, resolvable)
        # Standard SQL: a WHERE predicate on the nullable side of a LEFT JOIN
        # is evaluated after the join (NULL-padded rows fail it).  Pushing it
        # below the join would wrongly keep the padded rows, so those
        # conjuncts go back into the residual filter.
        nullable_sides = {join.table.effective_name.lower()
                          for join in select.joins if join.join_type == "LEFT"}
        for qualifier in nullable_sides:
            if pushed.get(qualifier):
                residual.extend(pushed[qualifier])
                pushed[qualifier] = []

        table_of = {ref.effective_name.lower(): ref.name for ref in table_refs}
        statistics = self.catalog.statistics
        foreign_names = {ref.name for ref in table_refs
                         if self.foreign.has(ref.name)}

        def row_estimate(qualifier: str) -> float:
            table = table_of[qualifier]
            if table in foreign_names:
                # Provider-reported cardinality (or the default), degraded
                # by the textbook selectivity per pushed conjunct — foreign
                # sources have no ANALYZE histograms to consult.
                selectivity = DEFAULT_SELECTIVITY ** len(pushed.get(qualifier, []))
                return max(1.0, self.foreign.row_estimate(table) * selectivity)
            return statistics.estimate_scan_rows(
                table, pushed.get(qualifier, []), qualifier)

        def ndv_estimate(qualifier: str, column: str) -> float:
            table = table_of[qualifier]
            if table in foreign_names:
                distinct = self.foreign.distinct_estimate(table, column)
                if distinct is None:
                    distinct = max(1.0, self.foreign.row_estimate(table) ** 0.5)
                return float(distinct)
            return float(statistics.distinct_estimate(table, column))

        def type_category(qualifier: str, column: str) -> Optional[str]:
            return self._column_category(table_of[qualifier], column)

        def foreign_info(table: str) -> Optional[Dict[str, Any]]:
            if table not in foreign_names:
                return None
            entry = self.foreign.table(table)
            qualifiers = [ref.effective_name.lower() for ref in table_refs
                          if ref.name == table]
            try:
                pushdown = option_bool(entry.options, "pushdown", True)
            except OperationalError:
                pushdown = True
            return {
                "provider": entry.provider_type,
                # ``pushdown false`` means full transfer: no provider-side
                # filtering *or* projection — the engine does all the work.
                "projected": (self._foreign_projection(select, table,
                                                       qualifiers)
                              if pushdown else ()),
                "pushdown": pushdown,
            }

        list_indexes = self.indexes.indexes_for if self.config.use_indexes else None
        order_hint = self._interesting_order(select, resolvable)
        plan, remaining = planlib.plan_select_joins(
            select.from_tables, select.joins, residual, resolvable, pushed,
            row_estimate=row_estimate, ndv_estimate=ndv_estimate,
            type_category=type_category,
            list_indexes=list_indexes,
            foreign_info=foreign_info if foreign_names else None,
            strategy=self.config.join_strategy,
            # With a memory budget, huge builds are what the Grace hash
            # join handles; auto must not escape to merge join, whose
            # inputs cannot spill yet and would materialize unbounded.
            hash_max_build_rows=(float("inf")
                                 if self.config.memory_budget_rows is not None
                                 else self.config.hash_join_max_build_rows),
            order_hint=order_hint,
            base_row_estimate=lambda qualifier: float(
                statistics.row_count_estimate(table_of[qualifier])),
            limit_hint=select.limit if order_hint is not None else None,
            memory_budget_rows=self.config.memory_budget_rows,
        )
        planlib.annotate_spill_expectations(plan, self.config.memory_budget_rows,
                                            self.config.parallel_workers)
        return plan, pushed, remaining, order_hint

    def _order_through_hash(self) -> bool:
        """Whether hash joins may be trusted to preserve probe-side order.

        Only without a memory budget: a Grace spill (an adaptive runtime
        decision) emits partition order, so sort elision must not reach
        through a hash join that could spill.
        """
        return self.config.memory_budget_rows is None

    def _interesting_order(self, select: ast.Select,
                           resolvable: Dict[str, Any],
                           ) -> Optional[Tuple[str, str, str]]:
        """The (qualifier, column, direction) an index-ordered scan could
        deliver.

        Only a single ORDER BY key that is a plain column reference resolving
        to one base table qualifies (and never under aggregation, where ORDER
        BY applies to the grouped output).  DESC keys are served by reverse
        B-tree traversal.
        """
        if len(select.order_by) != 1 or self._select_has_aggregates(select):
            return None
        item = select.order_by[0]
        if not isinstance(item.expr, ast.ColumnRef):
            return None
        qualifier = planlib.resolve_column(item.expr, resolvable)
        if qualifier is None:
            return None
        return (qualifier, item.expr.name.lower(),
                "asc" if item.ascending else "desc")

    def _execute_plan(self, node: planlib.PlanNode,
                      refs: Dict[str, ast.TableRef],
                      scan_cap: Optional[int] = None,
                      spill=None) -> ops.Relation:
        """Walk a plan tree bottom-up, joining with the planned strategies."""
        if isinstance(node, planlib.ScanPlan):
            return self._scan(refs[node.qualifier], node, scan_cap)
        if node.strategy == "index_nested_loop":
            left = self._execute_plan(node.left, refs, spill=spill)
            relation = self._index_join(left, node, refs)
        else:
            left = self._execute_plan(node.left, refs, spill=spill)
            right = self._execute_plan(node.right, refs, spill=spill)
            if node.strategy == "hash":
                relation = ops.hash_join(left, right, node.left_keys,
                                         node.right_keys, node.join_type,
                                         node.condition, spill=spill,
                                         spill_partitions=node.spill_partitions)
            elif node.strategy == "merge":
                relation = ops.merge_join(left, right, node.left_keys,
                                          node.right_keys, node.join_type,
                                          node.condition, spill=spill)
            else:
                join_type = "CROSS" if node.strategy == "cross" else node.join_type
                relation = ops.nested_loop_join(left, right, node.condition,
                                                join_type)
        # Residual conjuncts pushed down to this node filter the join output
        # (after any LEFT padding, preserving WHERE-over-LEFT-JOIN semantics).
        node_filter = combine_conjuncts(node.filters)
        if node_filter is not None:
            relation = ops.filter_rows(relation, node_filter)
        return self._stage(relation)

    def _index_join(self, left: ops.Relation, node: planlib.JoinPlan,
                    refs: Dict[str, ast.TableRef]) -> ops.Relation:
        """Index-nested-loop join: the right child must be a base-table scan."""
        right = node.right
        if not isinstance(right, planlib.ScanPlan):
            raise ExecutionError(
                "index-nested-loop join requires a base-table lookup side")
        source = self._row_source(refs[right.qualifier])
        index = self.indexes.get(node.index_name)
        right_filter = combine_conjuncts(right.pushed)
        return ops.index_nested_loop_join(
            left, source, index.structure, node.left_keys, node.right_keys,
            join_type=node.join_type, condition=node.condition,
            right_filter=right_filter,
        )

    @staticmethod
    def _restore_from_order(relation: ops.Relation,
                            table_refs: Sequence[ast.TableRef]) -> ops.Relation:
        """Permute the joined columns back into FROM-list order (streaming)."""
        schema, rows = relation
        permutation: List[int] = []
        for ref in table_refs:
            permutation.extend(schema.positions_for_qualifier(ref.effective_name))
        if len(permutation) != len(schema) \
                or permutation == list(range(len(schema))):
            return relation
        new_schema = OutputSchema([schema.columns[p] for p in permutation])

        def permuted():
            for row in rows:
                yield Row(tuple(row.values[p] for p in permutation),
                          [row.annotations[p] for p in permutation])
        return new_schema, permuted()

    # ------------------------------------------------------------------
    # ANALYZE / EXPLAIN
    # ------------------------------------------------------------------
    def _analyze(self, statement: ast.Analyze, user: str) -> ExecutionSummary:
        statistics = self.catalog.statistics
        if statement.table is not None:
            self._check(user, "SELECT", statement.table)
            tables = [self.catalog.table(statement.table).name]
        else:
            self._check_admin(user, "analyze all tables")
            tables = self.catalog.table_names()
        analyzed: Dict[str, Any] = {}
        for name in tables:
            stats = statistics.analyze(name)
            analyzed[name] = {
                "row_count": stats.row_count,
                "columns": {
                    column.name: {
                        "distinct": column.distinct,
                        "null_count": column.null_count,
                        "min": column.minimum,
                        "max": column.maximum,
                    }
                    for column in stats.columns.values()
                },
                "version": stats.version,
            }
        return ExecutionSummary(
            "ANALYZE", rows_affected=len(analyzed),
            message=f"analyzed {len(analyzed)} table(s)",
            details={"tables": analyzed},
        )

    def _explain(self, statement: ast.Explain, user: str) -> ExecutionSummary:
        plan_dict, text = self._explain_node(statement.target, user)
        return ExecutionSummary(
            "EXPLAIN", message=text, details={"plan": plan_dict, "text": text},
        )

    def _explain_node(self, node: Any, user: str) -> Tuple[Dict[str, Any], str]:
        if isinstance(node, ast.SetOperation):
            left_dict, left_text = self._explain_node(node.left, user)
            right_dict, right_text = self._explain_node(node.right, user)
            label = node.op + (" ALL" if node.all else "")
            text = "\n".join([label,
                              *("  " + line for line in left_text.splitlines()),
                              *("  " + line for line in right_text.splitlines())])
            return {"node": label, "left": left_dict, "right": right_dict}, text
        if not isinstance(node, ast.Select):
            raise PlanningError(
                f"EXPLAIN requires a query, got {type(node).__name__}")
        if not node.from_tables:
            return {"node": "Result"}, "Result (constant SELECT)"
        table_refs = list(node.from_tables) + [join.table for join in node.joins]
        for ref in table_refs:
            self._check(user, "SELECT", ref.name)
        plan, _, remaining, order_hint = self._plan_select(node, table_refs)
        self.last_plan = plan
        self.last_sort_elided = False
        text = planlib.format_plan(plan)
        plan_dict = planlib.plan_to_dict(plan)
        if remaining:
            text += f"\nResidual filter: {len(remaining)} conjunct(s)"
        budget = self.config.memory_budget_rows
        workers = self.config.parallel_workers
        parallel_suffix = (f" [parallel: {workers} workers]"
                           if budget is not None and workers >= 2 else "")
        has_aggregates = self._select_has_aggregates(node)
        if budget is not None:
            plan_dict["memory_budget_rows"] = budget
            if workers >= 2:
                plan_dict["parallel_workers"] = workers
            if has_aggregates and node.group_by \
                    and plan.estimated_rows > budget:
                partitions = planlib.estimated_spill_partitions(
                    plan.estimated_rows, budget)
                text += (f"\nAggregate [spill: {partitions} partitions]"
                         f"{parallel_suffix}")
                plan_dict["aggregate_spill_partitions"] = partitions
            if has_aggregates and node.order_by:
                # The sort runs over the *grouped* output, so its spill
                # expectation uses the estimated group count, not the
                # aggregation input.
                grouped = self._estimated_group_rows(node, plan, table_refs)
                if grouped > budget:
                    runs = planlib.estimated_sort_runs(grouped, budget)
                    text += f"\nSort [external: {runs} runs]{parallel_suffix}"
                    plan_dict["sort"] = "external"
        if node.order_by and not has_aggregates:
            elided = (order_hint is not None
                      and planlib.plan_delivered_order(
                          plan, self._order_through_hash()) == order_hint)
            self.last_sort_elided = elided
            if elided:
                qualifier, column, direction = order_hint
                text += (f"\nOrder: {qualifier}.{column} {direction.upper()}"
                         f" [sort: elided]")
                plan_dict["sort"] = "elided"
            elif budget is not None and plan.estimated_rows > budget:
                runs = planlib.estimated_sort_runs(plan.estimated_rows, budget)
                text += f"\nSort [external: {runs} runs]{parallel_suffix}"
                plan_dict["sort"] = "external"
        return plan_dict, text

    def _estimated_group_rows(self, select: ast.Select,
                              plan: planlib.PlanNode,
                              table_refs: Sequence[ast.TableRef]) -> float:
        """Estimated cardinality of the grouped output of ``select``.

        The product of the group-key NDVs when every key is a plain column
        reference (capped at the input estimate); the input estimate when a
        key is an arbitrary expression; 1 for a global aggregate.
        """
        if not select.group_by:
            return 1.0
        statistics = self.catalog.statistics
        table_of = {ref.effective_name.lower(): ref.name for ref in table_refs}
        resolvable = self._resolvable_columns(table_refs)
        input_rows = max(plan.estimated_rows, 1.0)
        estimate = 1.0
        for expr in select.group_by:
            if not isinstance(expr, ast.ColumnRef):
                return input_rows
            qualifier = planlib.resolve_column(expr, resolvable)
            if qualifier is None:
                return input_rows
            table = table_of[qualifier]
            if self.foreign.has(table):
                distinct = self.foreign.distinct_estimate(table, expr.name)
                if distinct is None:
                    return input_rows
            else:
                distinct = statistics.distinct_estimate(table, expr.name)
            estimate *= max(1.0, float(distinct))
        return min(estimate, input_rows)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, statement: ast.CreateTable, user: str) -> ExecutionSummary:
        self._check_admin(user, "create tables")
        if self.foreign.has(statement.name):
            raise CatalogError(
                f"cannot create table {statement.name!r}: an attached "
                f"foreign table with that name exists")
        columns = [
            Column(
                name=definition.name,
                dtype=DataType.from_name(definition.type_name),
                nullable=definition.nullable,
                primary_key=definition.primary_key,
                default=definition.default,
            )
            for definition in statement.columns
        ]
        self.catalog.create_table(TableSchema(statement.name, columns))
        return ExecutionSummary("CREATE TABLE", message=f"table {statement.name} created")

    def _drop_table(self, statement: ast.DropTable, user: str) -> ExecutionSummary:
        self._check_admin(user, "drop tables")
        self.annotations.drop_all_for(statement.name)
        self.indexes.drop_indexes_for(statement.name)
        self.catalog.drop_table(statement.name)
        return ExecutionSummary("DROP TABLE", message=f"table {statement.name} dropped")

    def _create_index(self, statement: ast.CreateIndex, user: str) -> ExecutionSummary:
        self._check_admin(user, "create indexes")
        self.indexes.create_index(statement.name, statement.table,
                                  statement.columns, statement.method)
        return ExecutionSummary(
            "CREATE INDEX",
            message=f"index {statement.name} ({statement.method}) created on "
                    f"{statement.table}({', '.join(statement.columns)})",
        )

    def _drop_index(self, statement: ast.DropIndex, user: str) -> ExecutionSummary:
        self._check_admin(user, "drop indexes")
        self.indexes.drop_index(statement.name)
        return ExecutionSummary("DROP INDEX", message=f"index {statement.name} dropped")

    # ------------------------------------------------------------------
    # Foreign tables (ATTACH / DETACH)
    # ------------------------------------------------------------------
    def _attach(self, statement: ast.Attach, user: str) -> ExecutionSummary:
        self._check_admin(user, "attach foreign tables")
        entry = self.foreign.attach(statement.name, statement.uri,
                                    statement.provider_type, statement.options)
        return ExecutionSummary(
            "ATTACH",
            message=f"foreign table {entry.name} attached "
                    f"[provider: {entry.provider_type}] from {entry.uri}",
            details={"table": entry.describe()},
        )

    def _detach(self, statement: ast.Detach, user: str) -> ExecutionSummary:
        self._check_admin(user, "detach foreign tables")
        try:
            self.foreign.detach(statement.name)
        except CatalogError:
            if statement.if_exists:
                return ExecutionSummary(
                    "DETACH",
                    message=f"foreign table {statement.name} was not attached")
            raise
        return ExecutionSummary(
            "DETACH", message=f"foreign table {statement.name} detached")

    def _reject_foreign_dml(self, table: str, verb: str) -> None:
        """Foreign tables are read-only through SQL for now.

        Providers may advertise ``supports_write`` for direct API use; the
        DML path would additionally need journaling and index/annotation
        bookkeeping the foreign subsystem deliberately does not fake.
        """
        if self.foreign.has(table):
            raise OperationalError(
                f"{verb} on foreign table {table!r} is not supported; "
                f"attached foreign tables are read-only")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _literal_evaluator(self) -> Evaluator:
        return Evaluator(OutputSchema([]))

    def _insert(self, statement: ast.Insert, user: str) -> ExecutionSummary:
        self._reject_foreign_dml(statement.table, "INSERT")
        self._check(user, "INSERT", statement.table)
        table = self.catalog.table(statement.table)
        evaluator = self._literal_evaluator()
        empty = Row(())
        inserted: List[int] = []
        logged: List[int] = []
        for row_exprs in statement.rows:
            values = [evaluator.compile(expr)(empty) for expr in row_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        "INSERT column list and VALUES arity do not match"
                    )
                row_dict = dict(zip(statement.columns, values))
                tuple_id = table.insert_row(row_dict)
            else:
                tuple_id = table.insert_positional(values)
                row_dict = dict(zip(table.schema.column_names,
                                    table.read_row(tuple_id)))
            inserted.append(tuple_id)
            self.indexes.on_insert(table.name, tuple_id,
                                   dict(zip(table.schema.column_names,
                                            table.read_row(tuple_id))))
            operation = self.approval.log_insert(user, table.name, tuple_id, row_dict)
            if operation is not None:
                logged.append(operation.op_id)
            if self.config.auto_provenance:
                cells = {(tuple_id, pos) for pos in range(len(table.schema))}
                self.provenance.record(table.name, cells, source="local",
                                       operation="insert", agent="system", user=user)
        self.catalog.statistics.on_insert(table.name, len(inserted))
        return ExecutionSummary(
            "INSERT", rows_affected=len(inserted),
            details={"tuple_ids": inserted, "logged_operations": logged},
        )

    def _matching_tuples(self, table_name: str,
                         where: Optional[ast.Expression],
                         qualifier: Optional[str] = None) -> List[Tuple[int, Row]]:
        """Return (tuple_id, row) pairs of a table matching ``where``."""
        table = self.catalog.table(table_name)
        schema, rows = ops.scan_table(table, qualifier or table.name,
                                      include_tuple_id=True)
        if where is not None:
            schema, rows = ops.filter_rows((schema, rows), where)
        return [(row.values[0], row) for row in rows]

    def _update(self, statement: ast.Update, user: str) -> ExecutionSummary:
        self._reject_foreign_dml(statement.table, "UPDATE")
        self._check(user, "UPDATE", statement.table)
        table = self.catalog.table(statement.table)
        matches = self._matching_tuples(statement.table, statement.where)
        schema, _ = ops.scan_table(table, table.name, include_tuple_id=True)
        evaluator = Evaluator(schema)
        compiled = [(column, evaluator.compile(expr))
                    for column, expr in statement.assignments]
        impact = UpdateImpact()
        logged: List[int] = []
        for tuple_id, row in matches:
            old_row = dict(zip(table.schema.column_names, table.read_row(tuple_id)))
            changes = {column: evaluate(row) for column, evaluate in compiled}
            table.update_row(tuple_id, changes)
            self.indexes.on_update(table.name, tuple_id, old_row,
                                   dict(zip(table.schema.column_names,
                                            table.read_row(tuple_id))))
            old_subset = {column: old_row[table.schema.column(column).name]
                          if table.schema.column(column).name in old_row
                          else old_row.get(column)
                          for column in changes}
            operation = self.approval.log_update(user, table.name, tuple_id,
                                                 old_subset, changes)
            if operation is not None:
                logged.append(operation.op_id)
            impact.merge(self.tracker.handle_update(table.name, tuple_id,
                                                    list(changes)))
        self.catalog.statistics.on_update(table.name, len(matches))
        return ExecutionSummary(
            "UPDATE", rows_affected=len(matches),
            details={
                "tuple_ids": [tuple_id for tuple_id, _ in matches],
                "changed_columns": [column for column, _ in statement.assignments],
                "logged_operations": logged,
                "recomputed": impact.recomputed,
                "marked_outdated": impact.marked_outdated,
            },
        )

    def _delete(self, statement: ast.Delete, user: str) -> ExecutionSummary:
        self._reject_foreign_dml(statement.table, "DELETE")
        self._check(user, "DELETE", statement.table)
        table = self.catalog.table(statement.table)
        matches = self._matching_tuples(statement.table, statement.where)
        impact = UpdateImpact()
        logged: List[int] = []
        deleted_rows: List[Dict[str, Any]] = []
        for tuple_id, _ in matches:
            old_row = dict(zip(table.schema.column_names, table.read_row(tuple_id)))
            impact.merge(self.tracker.handle_delete(table.name, tuple_id))
            table.delete_row(tuple_id)
            self.indexes.on_delete(table.name, tuple_id, old_row)
            deleted_rows.append(old_row)
            operation = self.approval.log_delete(user, table.name, tuple_id, old_row)
            if operation is not None:
                logged.append(operation.op_id)
        self.catalog.statistics.on_delete(table.name, len(matches))
        return ExecutionSummary(
            "DELETE", rows_affected=len(matches),
            details={
                "tuple_ids": [tuple_id for tuple_id, _ in matches],
                "deleted_rows": deleted_rows,
                "logged_operations": logged,
                "marked_outdated": impact.marked_outdated,
            },
        )

    # ------------------------------------------------------------------
    # A-SQL: annotation DDL and DML
    # ------------------------------------------------------------------
    def _create_annotation_table(self, statement: ast.CreateAnnotationTable,
                                 user: str) -> ExecutionSummary:
        self._check(user, "ANNOTATE", statement.on_table)
        self.annotations.create_annotation_table(
            statement.on_table, statement.annotation_table,
            scheme=self.config.default_annotation_scheme,
        )
        return ExecutionSummary(
            "CREATE ANNOTATION TABLE",
            message=f"annotation table {statement.on_table}.{statement.annotation_table} created",
        )

    def _drop_annotation_table(self, statement: ast.DropAnnotationTable,
                               user: str) -> ExecutionSummary:
        self._check(user, "ANNOTATE", statement.on_table)
        self.annotations.drop_annotation_table(statement.on_table,
                                               statement.annotation_table)
        return ExecutionSummary(
            "DROP ANNOTATION TABLE",
            message=f"annotation table {statement.on_table}.{statement.annotation_table} dropped",
        )

    def _target_cells_from_select(self, select: ast.Select) -> Tuple[str, Set[Cell]]:
        """Resolve the (user table, cells) an ADD/ARCHIVE/RESTORE target selects.

        The enclosed SELECT must reference a single user table; the projected
        columns determine the column granularity (``*`` selects whole tuples,
        an explicit list selects those columns only), and the WHERE clause
        determines which tuples are covered (no WHERE covers the whole table,
        as in the paper's GSequence-column example).
        """
        if len(select.from_tables) != 1 or select.joins:
            raise AnnotationError(
                "the ON <statement> of an annotation command must select from "
                "exactly one user table"
            )
        if select.group_by or select.having:
            raise AnnotationError(
                "the ON <statement> of an annotation command cannot use GROUP BY"
            )
        ref = select.from_tables[0]
        table = self.catalog.table(ref.name)
        schema = table.schema
        # Which columns does the projection cover?
        positions: List[int] = []
        for item in select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                positions = list(range(len(schema)))
                break
            if isinstance(expr, ast.ColumnRef):
                positions.append(schema.column_position(expr.name))
            else:
                raise AnnotationError(
                    "annotation targets must project plain columns or *"
                )
        matches = self._matching_tuples(ref.name, select.where, ref.effective_name)
        cells = {(tuple_id, position) for tuple_id, _ in matches for position in positions}
        return table.name, cells

    def _add_annotation(self, statement: ast.AddAnnotation, user: str) -> ExecutionSummary:
        target = statement.target
        if isinstance(target, ast.Select):
            user_table, cells = self._target_cells_from_select(target)
            dml_summary = None
        elif isinstance(target, (ast.Insert, ast.Update)):
            dml_summary = self.execute(target, user)
            user_table = target.table
            table = self.catalog.table(user_table)
            tuple_ids = dml_summary.details.get("tuple_ids", [])
            if isinstance(target, ast.Update):
                columns = dml_summary.details.get("changed_columns", [])
                positions = [table.schema.column_position(c) for c in columns]
            else:
                positions = list(range(len(table.schema)))
            cells = {(tuple_id, position) for tuple_id in tuple_ids for position in positions}
        elif isinstance(target, ast.Delete):
            # Deleted tuples are preserved in a log table together with the
            # annotation explaining the deletion (paper Section 3.2).
            return self._annotate_delete(statement, target, user)
        else:
            raise AnnotationError(
                "ADD ANNOTATION requires a SELECT, INSERT, UPDATE or DELETE target"
            )
        self._check(user, "ANNOTATE", user_table)
        added = self.annotations.add_annotation(
            statement.annotation_tables, statement.body, cells,
            curator=user, user_table=user_table,
        )
        summary = ExecutionSummary(
            "ADD ANNOTATION", rows_affected=len(added),
            message=f"annotation added to {len(cells)} cell(s) of {user_table}",
            details={"annotations": added, "cells": sorted(cells)},
        )
        if dml_summary is not None:
            summary.details["dml"] = dml_summary
        return summary

    def _annotate_delete(self, statement: ast.AddAnnotation, target: ast.Delete,
                         user: str) -> ExecutionSummary:
        table = self.catalog.table(target.table)
        log_table_name = f"{table.name}__deleted"
        if not self.catalog.has_table(log_table_name):
            columns = [
                Column(column.name, column.dtype, nullable=True, primary_key=False)
                for column in table.schema.columns
            ]
            self.catalog.create_table(TableSchema(log_table_name, columns))
        log_table = self.catalog.table(log_table_name)
        summary = self._delete(target, user)
        new_tuple_ids = []
        for row in summary.details["deleted_rows"]:
            new_tuple_ids.append(log_table.insert_row(row))
        # The annotation explaining the deletion is attached to the logged rows.
        for spec in statement.annotation_tables:
            name = spec.split(".")[-1]
            if not self.annotations.has(log_table_name, name):
                self.annotations.create_annotation_table(
                    log_table_name, name,
                    scheme=self.config.default_annotation_scheme,
                )
        cells = {(tuple_id, position)
                 for tuple_id in new_tuple_ids
                 for position in range(len(log_table.schema))}
        added = []
        if cells:
            added = self.annotations.add_annotation(
                [spec.split(".")[-1] for spec in statement.annotation_tables],
                statement.body, cells, curator=user, user_table=log_table_name,
            )
        return ExecutionSummary(
            "ADD ANNOTATION", rows_affected=summary.rows_affected,
            message=(f"{summary.rows_affected} tuple(s) deleted from {table.name}; "
                     f"logged to {log_table_name} with annotation"),
            details={"dml": summary, "annotations": added,
                     "log_table": log_table_name},
        )

    def _archive_restore(self, statement: Any, user: str, archive: bool) -> ExecutionSummary:
        if not isinstance(statement.target, ast.Select):
            raise AnnotationError(
                "ARCHIVE/RESTORE ANNOTATION requires a SELECT target"
            )
        user_table, cells = self._target_cells_from_select(statement.target)
        self._check(user, "ANNOTATE", user_table)
        time_from = parse_timestamp(statement.time_from) if statement.time_from else None
        time_to = parse_timestamp(statement.time_to) if statement.time_to else None
        if archive:
            changed = self.annotations.archive(statement.annotation_tables, cells,
                                               time_from, time_to, user_table)
            verb = "archived"
        else:
            changed = self.annotations.restore(statement.annotation_tables, cells,
                                               time_from, time_to, user_table)
            verb = "restored"
        return ExecutionSummary(
            "ARCHIVE ANNOTATION" if archive else "RESTORE ANNOTATION",
            rows_affected=len(changed),
            message=f"{len(changed)} annotation(s) {verb}",
            details={"annotations": changed},
        )

    # ------------------------------------------------------------------
    # Authorization statements
    # ------------------------------------------------------------------
    def _grant(self, statement: ast.Grant, user: str) -> ExecutionSummary:
        self._check_admin(user, "grant privileges")
        records = self.access.grant(statement.privileges, statement.table,
                                    statement.grantee)
        self.transactions.note_grant(statement.privileges, statement.table,
                                     statement.grantee)
        return ExecutionSummary(
            "GRANT", rows_affected=len(records),
            message=f"granted {', '.join(statement.privileges)} on "
                    f"{statement.table} to {statement.grantee}",
        )

    def _revoke(self, statement: ast.Revoke, user: str) -> ExecutionSummary:
        self._check_admin(user, "revoke privileges")
        removed = self.access.revoke(statement.privileges, statement.table,
                                     statement.grantee)
        self.transactions.note_revoke(statement.privileges, statement.table,
                                      statement.grantee)
        return ExecutionSummary(
            "REVOKE", rows_affected=removed,
            message=f"revoked {', '.join(statement.privileges)} on "
                    f"{statement.table} from {statement.grantee}",
        )

    def _start_approval(self, statement: ast.StartContentApproval,
                        user: str) -> ExecutionSummary:
        self._check_admin(user, "start content approval")
        config = self.approval.start_approval(statement.table, statement.approver,
                                              statement.columns)
        scope = ", ".join(config.columns) if config.columns else "all columns"
        return ExecutionSummary(
            "START CONTENT APPROVAL",
            message=f"content approval ON for {config.table} ({scope}), "
                    f"approved by {config.approver}",
        )

    def _stop_approval(self, statement: ast.StopContentApproval,
                       user: str) -> ExecutionSummary:
        self._check_admin(user, "stop content approval")
        self.approval.stop_approval(statement.table, statement.columns)
        return ExecutionSummary(
            "STOP CONTENT APPROVAL",
            message=f"content approval OFF for {statement.table}",
        )
