"""Prepared statements and the schema-versioned plan cache.

The DB-API surface (``repro.connect``) executes everything through
:class:`PreparedStatement`: the SQL text is tokenized and parsed exactly once
(statement cache on the connection), and for queries the plan tree is built
exactly once per ``(SQL text, EngineConfig fingerprint)`` and reused until
the catalog's schema version moves (DDL, index DDL, ANALYZE — including
statistics auto-refresh).  Bound values are substituted into the cached
plan's expressions per execution (:func:`bind_plan`), so re-executing a
prepared statement skips tokenize + parse + join planning + access-path
selection entirely.

The cache is a plain LRU over ``OrderedDict`` — capacity comes from
``EngineConfig.plan_cache_size`` — and every entry remembers the schema
version it was planned under plus the base tables it touches (so a cache hit
can poke statistics staleness before trusting the plan).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.planner import plan as planlib
from repro.sql import ast
from repro.sql.parameters import substitute_parameters


class PreparedStatement:
    """A parsed statement plus its placeholder count.

    Immutable after construction; holds the template AST (with
    :class:`ast.Parameter` nodes intact) that planning and binding both
    read.  Obtained from :meth:`repro.executor.engine.Engine.prepare`.
    """

    __slots__ = ("sql", "statement", "parameter_count", "is_query")

    def __init__(self, sql: str, statement: Any, parameter_count: int):
        self.sql = sql
        self.statement = statement
        self.parameter_count = parameter_count
        self.is_query = isinstance(statement, (ast.Select, ast.SetOperation))

    def __repr__(self) -> str:
        return (f"PreparedStatement({self.sql!r}, "
                f"parameters={self.parameter_count})")


@dataclass
class PlanCacheStats:
    """Counters for observability: tests and benchmarks assert on these."""

    hits: int = 0
    misses: int = 0
    #: Entries dropped because the catalog schema version moved under them.
    invalidations: int = 0
    #: Entries dropped by LRU capacity pressure.
    evictions: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = self.evictions = 0


@dataclass
class CachedPlan:
    """One cached planning result for a single SELECT block."""

    schema_version: int
    plan: planlib.PlanNode
    pushed: Dict[str, List[ast.Expression]]
    remaining: List[ast.Expression]
    #: ``(qualifier, column, "asc"|"desc")`` of the interesting order the
    #: plan was built against, or ``None``.
    order_hint: Optional[Tuple[str, str, str]]
    #: Base tables the plan reads — poked for statistics staleness on a hit.
    tables: Tuple[str, ...] = ()


class PlanCache:
    """LRU of :class:`CachedPlan` keyed on (sql, block, config fingerprint).

    Internally locked: the network server shares one engine (hence one plan
    cache) across pooled worker threads, and neither ``OrderedDict`` LRU
    maintenance (``move_to_end`` + the eviction loop) nor the stats counters
    are atomic under concurrent access.  The lock covers individual
    operations only — the planner's lookup/validate/store window is
    serialized one level up by the engine's prepared lock.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[Any, ...], CachedPlan]" = OrderedDict()
        self.stats = PlanCacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def note_hit(self) -> None:
        with self._lock:
            self.stats.hits += 1

    def note_miss(self) -> None:
        with self._lock:
            self.stats.misses += 1

    def lookup(self, key: Tuple[Any, ...],
               schema_version: int) -> Optional[CachedPlan]:
        """A valid entry for ``key``, or ``None`` (stale entries are dropped
        and counted as invalidations; the hit/miss tally is the caller's —
        it may still re-validate the entry after poking statistics)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.schema_version != schema_version:
                del self._entries[key]
                self.stats.invalidations += 1
                return None
            self._entries.move_to_end(key)
            return entry

    def discard(self, key: Tuple[Any, ...]) -> None:
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self.stats.invalidations += 1

    def store(self, key: Tuple[Any, ...], entry: CachedPlan) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > max(0, self.capacity):
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ---------------------------------------------------------------------------
# Plan binding
# ---------------------------------------------------------------------------
def resolve_bound_value(value: Any, params: Sequence[Any]) -> Any:
    """Resolve an index-key component that may be a parameter placeholder."""
    if isinstance(value, ast.Parameter):
        return params[value.index]
    if isinstance(value, tuple) \
            and any(isinstance(component, ast.Parameter)
                    for component in value):
        return tuple(resolve_bound_value(component, params)
                     for component in value)
    return value


def bind_plan(node: planlib.PlanNode,
              params: Sequence[Any]) -> planlib.PlanNode:
    """A copy of the plan tree with bound parameter values substituted.

    Expression lists (pushed conjuncts, join conditions, per-node filters)
    get :func:`substitute_parameters`; index lookup keys get the raw bound
    value.  With no parameters the original tree is returned unchanged —
    which keeps ``engine.last_plan`` identity stable across cached
    executions of unparameterized statements too.

    The bound copy is what the executor walks; the cached template is never
    mutated, so one plan serves concurrent bind sets sequentially.
    Identity-preserving per subtree: nodes without placeholders below them
    are shared, not copied (``copy.copy`` — not ``dataclasses.replace`` —
    for the ones that do change, to keep the per-execution cost at a few
    microseconds).
    """
    if not params:
        return node
    if isinstance(node, planlib.ScanPlan):
        pushed = [substitute_parameters(conjunct, params)
                  for conjunct in node.pushed]
        index_key = resolve_bound_value(node.index_key, params)
        range_low = resolve_bound_value(node.range_low, params)
        range_high = resolve_bound_value(node.range_high, params)
        if index_key is node.index_key \
                and range_low is node.range_low \
                and range_high is node.range_high \
                and all(new is old for new, old in zip(pushed, node.pushed)):
            return node
        clone = copy.copy(node)
        clone.pushed = pushed
        clone.index_key = index_key
        clone.range_low = range_low
        clone.range_high = range_high
        return clone
    left = bind_plan(node.left, params)
    right = bind_plan(node.right, params)
    condition = (None if node.condition is None
                 else substitute_parameters(node.condition, params))
    filters = [substitute_parameters(conjunct, params)
               for conjunct in node.filters]
    if left is node.left and right is node.right \
            and condition is node.condition \
            and all(new is old for new, old in zip(filters, node.filters)):
        return node
    clone = copy.copy(node)
    clone.left = left
    clone.right = right
    clone.condition = condition
    clone.filters = filters
    return clone
