"""Outdated-cell bitmaps with run-length-encoded compression (Figure 10).

The paper associates a bitmap with each table: a cell of the bitmap is 1 when
the corresponding data cell is outdated and needs re-verification, 0
otherwise, and suggests Run-Length-Encoding to compress the bitmaps.  The
reproduction keeps the bitmap as a per-column set of outdated tuple ids and
can materialise the dense bit matrix and its RLE form for measurement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.index.sbc.rle import rle_encode_bits


class OutdatedBitmap:
    """Tracks which (tuple id, column) cells of one table are outdated."""

    def __init__(self, table: str, column_names: List[str]):
        self.table = table
        self.column_names = list(column_names)
        self._outdated: Dict[str, Set[int]] = {name.lower(): set() for name in column_names}

    # ------------------------------------------------------------------
    def _column(self, column: str) -> Set[int]:
        key = column.lower()
        if key not in self._outdated:
            raise KeyError(f"table {self.table!r} has no column {column!r}")
        return self._outdated[key]

    def mark(self, tuple_id: int, column: str) -> None:
        self._column(column).add(tuple_id)

    def clear(self, tuple_id: int, column: str) -> None:
        self._column(column).discard(tuple_id)

    def clear_tuple(self, tuple_id: int) -> None:
        for cells in self._outdated.values():
            cells.discard(tuple_id)

    def is_outdated(self, tuple_id: int, column: str) -> bool:
        return tuple_id in self._column(column)

    # -- transaction support --------------------------------------------
    def snapshot(self) -> Dict[str, Set[int]]:
        """A deep copy of the outdated sets (taken at transaction BEGIN)."""
        return {column: set(ids) for column, ids in self._outdated.items()}

    def restore(self, snapshot: Dict[str, Set[int]]) -> None:
        """Reset the outdated sets to a previously taken :meth:`snapshot`."""
        self._outdated = {column: set(ids) for column, ids in snapshot.items()}

    def outdated_cells(self) -> List[Tuple[int, str]]:
        cells = []
        for name in self.column_names:
            for tuple_id in sorted(self._outdated[name.lower()]):
                cells.append((tuple_id, name))
        return cells

    def outdated_count(self) -> int:
        return sum(len(cells) for cells in self._outdated.values())

    def outdated_tuples(self) -> Set[int]:
        tuples: Set[int] = set()
        for cells in self._outdated.values():
            tuples |= cells
        return tuples

    def outdated_columns_of(self, tuple_id: int) -> List[str]:
        return [
            name for name in self.column_names
            if tuple_id in self._outdated[name.lower()]
        ]

    # ------------------------------------------------------------------
    # Dense matrix and compression (for measurement / Figure 10)
    # ------------------------------------------------------------------
    def dense_rows(self, tuple_ids: Iterable[int]) -> List[List[int]]:
        """Materialise the bitmap as rows of 0/1 in schema column order."""
        rows = []
        for tuple_id in tuple_ids:
            rows.append([
                1 if tuple_id in self._outdated[name.lower()] else 0
                for name in self.column_names
            ])
        return rows

    def raw_size_bits(self, num_tuples: int) -> int:
        """Size of the uncompressed bitmap in bits."""
        return num_tuples * len(self.column_names)

    def rle_size_bits(self, tuple_ids: Iterable[int]) -> int:
        """Size of the RLE-compressed bitmap in bits.

        Each column's bit vector (in tuple-id order) is RLE-encoded
        independently; a run is charged 1 bit for the symbol plus 32 bits for
        the run length, the encoding the paper's Figure 10 discussion implies.
        """
        ordered = list(tuple_ids)
        total_bits = 0
        for name in self.column_names:
            outdated = self._outdated[name.lower()]
            bits = [1 if tuple_id in outdated else 0 for tuple_id in ordered]
            runs = rle_encode_bits(bits)
            total_bits += sum(1 + 32 for _ in runs)
        return total_bits

    def compression_ratio(self, tuple_ids: Iterable[int]) -> float:
        ordered = list(tuple_ids)
        raw = self.raw_size_bits(len(ordered))
        if raw == 0:
            return 1.0
        compressed = self.rle_size_bits(ordered)
        return raw / compressed if compressed else float("inf")
