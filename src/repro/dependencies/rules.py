"""Procedural dependencies (paper Section 5).

The paper extends functional dependencies to *procedural dependencies*: a
target column depends on one or more source columns **through a procedure**
that is characterised by whether the database can execute it (a prediction
tool wrapped as a function vs. a wet-lab experiment) and whether it is
invertible.  The rule set supports the reasoning the paper calls out:

* attribute closure — every column transitively affected by a column,
* procedure closure — every column that depends on a given procedure,
* rule derivation by chaining (rules 1 + 2 ⇒ rule 4 in the paper),
* conflict and cycle detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import DependencyError

#: A schema-level column reference: (table name, column name), lower-cased.
ColumnKey = Tuple[str, str]


def column_key(table: str, column: str) -> ColumnKey:
    return (table.lower(), column.lower())


@dataclass(frozen=True)
class Procedure:
    """The procedure through which a dependency holds.

    ``implementation`` is the optional Python callable that re-computes the
    target value; it is only meaningful for executable procedures.  Its
    signature is ``implementation(source_row, target_row) -> new_value`` where
    both rows are column-name -> value dictionaries.
    """

    name: str
    executable: bool = False
    invertible: bool = False
    implementation: Optional[Callable[[Dict[str, Any], Dict[str, Any]], Any]] = None

    def __post_init__(self) -> None:
        if self.implementation is not None and not self.executable:
            raise DependencyError(
                f"procedure {self.name!r} has an implementation but is marked "
                f"non-executable"
            )

    def can_recompute(self) -> bool:
        return self.executable and self.implementation is not None

    def chain(self, other: "Procedure") -> "Procedure":
        """Compose two procedures (used when deriving rules by transitivity).

        The chain is executable only if both procedures are executable, and
        invertible only if both are invertible — exactly the paper's rule 4
        reasoning.  Chained implementations are not composed automatically
        because the intermediate value lives in another table.
        """
        return Procedure(
            name=f"{self.name} + {other.name}",
            executable=self.executable and other.executable,
            invertible=self.invertible and other.invertible,
            implementation=None,
        )


@dataclass(frozen=True)
class DependencyRule:
    """A schema-level procedural dependency: sources --procedure--> targets.

    ``source_key`` / ``target_key`` describe how to find the dependent rows of
    the target table from a modified source row.  When the source and target
    tables coincide they default to "same tuple"; across tables they name the
    join columns (e.g. ``Gene.GID = Protein.GID``).
    """

    name: str
    sources: Tuple[ColumnKey, ...]
    targets: Tuple[ColumnKey, ...]
    procedure: Procedure
    source_key: Optional[str] = None
    target_key: Optional[str] = None
    derived: bool = False

    @classmethod
    def create(cls, name: str, sources: Sequence[Tuple[str, str]],
               targets: Sequence[Tuple[str, str]], procedure: Procedure,
               source_key: Optional[str] = None,
               target_key: Optional[str] = None,
               derived: bool = False) -> "DependencyRule":
        return cls(
            name=name,
            sources=tuple(column_key(t, c) for t, c in sources),
            targets=tuple(column_key(t, c) for t, c in targets),
            procedure=procedure,
            source_key=source_key.lower() if source_key else None,
            target_key=target_key.lower() if target_key else None,
            derived=derived,
        )

    @property
    def source_tables(self) -> Set[str]:
        return {table for table, _ in self.sources}

    @property
    def target_tables(self) -> Set[str]:
        return {table for table, _ in self.targets}

    def is_cross_table(self) -> bool:
        return self.source_tables != self.target_tables

    def affects(self, table: str, column: str) -> bool:
        return column_key(table, column) in self.sources

    def __str__(self) -> str:
        sources = ", ".join(f"{t}.{c}" for t, c in self.sources)
        targets = ", ".join(f"{t}.{c}" for t, c in self.targets)
        traits = []
        traits.append("executable" if self.procedure.executable else "non-executable")
        traits.append("invertible" if self.procedure.invertible else "non-invertible")
        return f"{sources} --[{self.procedure.name} ({', '.join(traits)})]--> {targets}"


class RuleSet:
    """A collection of procedural dependency rules with reasoning support."""

    def __init__(self) -> None:
        self._rules: List[DependencyRule] = []

    # ------------------------------------------------------------------
    def add(self, rule: DependencyRule, check_cycles: bool = False) -> DependencyRule:
        for existing in self._rules:
            if existing.name == rule.name:
                raise DependencyError(f"duplicate rule name {rule.name!r}")
        conflict = self.find_conflict(rule)
        if conflict is not None:
            raise DependencyError(
                f"rule {rule.name!r} conflicts with {conflict.name!r}: both derive "
                f"{sorted(set(rule.targets) & set(conflict.targets))} through "
                f"different procedures"
            )
        self._rules.append(rule)
        if check_cycles:
            cycle = self.find_cycle()
            if cycle is not None:
                self._rules.pop()
                raise DependencyError(
                    "adding rule {0!r} creates a dependency cycle: {1}".format(
                        rule.name, " -> ".join(f"{t}.{c}" for t, c in cycle)
                    )
                )
        return rule

    def remove(self, name: str) -> None:
        before = len(self._rules)
        self._rules = [rule for rule in self._rules if rule.name != name]
        if len(self._rules) == before:
            raise DependencyError(f"no rule named {name!r}")

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    @property
    def rules(self) -> List[DependencyRule]:
        return list(self._rules)

    def rules_with_source(self, table: str, column: str) -> List[DependencyRule]:
        return [rule for rule in self._rules if rule.affects(table, column)]

    def rules_for_table(self, table: str) -> List[DependencyRule]:
        key = table.lower()
        return [
            rule for rule in self._rules
            if key in rule.source_tables or key in rule.target_tables
        ]

    # ------------------------------------------------------------------
    # Reasoning
    # ------------------------------------------------------------------
    def find_conflict(self, candidate: DependencyRule) -> Optional[DependencyRule]:
        """Two rules conflict when they derive the same target column through
        different procedures from the same source set (ambiguous derivation)."""
        for rule in self._rules:
            if rule.derived or candidate.derived:
                continue
            shared_targets = set(rule.targets) & set(candidate.targets)
            if not shared_targets:
                continue
            if set(rule.sources) == set(candidate.sources) and \
                    rule.procedure.name != candidate.procedure.name:
                return rule
        return None

    def find_cycle(self) -> Optional[List[ColumnKey]]:
        """Return a column-level dependency cycle if one exists, else ``None``."""
        graph: Dict[ColumnKey, Set[ColumnKey]] = {}
        for rule in self._rules:
            for source in rule.sources:
                graph.setdefault(source, set()).update(rule.targets)
        WHITE, GRAY, BLACK = 0, 1, 2
        state: Dict[ColumnKey, int] = {node: WHITE for node in graph}
        stack: List[ColumnKey] = []

        def visit(node: ColumnKey) -> Optional[List[ColumnKey]]:
            state[node] = GRAY
            stack.append(node)
            for succ in graph.get(node, ()):  # pragma: no branch
                if state.get(succ, WHITE) == GRAY:
                    start = stack.index(succ)
                    return stack[start:] + [succ]
                if state.get(succ, WHITE) == WHITE:
                    cycle = visit(succ)
                    if cycle is not None:
                        return cycle
            stack.pop()
            state[node] = BLACK
            return None

        for node in list(graph):
            if state.get(node, 0) == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def attribute_closure(self, columns: Iterable[Tuple[str, str]]) -> Set[ColumnKey]:
        """All columns transitively affected when ``columns`` change.

        The result includes the starting columns themselves, mirroring the
        classical closure of an attribute set under functional dependencies.
        """
        closure: Set[ColumnKey] = {column_key(t, c) for t, c in columns}
        changed = True
        while changed:
            changed = False
            for rule in self._rules:
                if any(source in closure for source in rule.sources):
                    for target in rule.targets:
                        if target not in closure:
                            closure.add(target)
                            changed = True
        return closure

    def procedure_closure(self, procedure_name: str) -> Set[ColumnKey]:
        """All columns that (transitively) depend on the named procedure.

        This answers the paper's "closure of a procedure" question: if the
        procedure changes (e.g. a new BLAST version), which data must be
        re-evaluated or marked outdated.
        """
        direct: Set[ColumnKey] = set()
        for rule in self._rules:
            if rule.procedure.name == procedure_name or \
                    procedure_name in rule.procedure.name.split(" + "):
                direct.update(rule.targets)
        if not direct:
            return set()
        return self.attribute_closure([(t, c) for t, c in direct])

    def derive_chained_rules(self, max_depth: int = 4) -> List[DependencyRule]:
        """Derive new rules by chaining existing ones (paper's rule 4).

        A derived rule A --P--> C is produced whenever A --P1--> B and
        B --P2--> C exist; the chained procedure is executable/invertible only
        when both components are.  Derivation iterates until a fixed point or
        ``max_depth`` chaining levels.
        """
        derived: List[DependencyRule] = []
        known: Set[Tuple[FrozenSet[ColumnKey], FrozenSet[ColumnKey]]] = {
            (frozenset(rule.sources), frozenset(rule.targets)) for rule in self._rules
        }
        frontier = list(self._rules)
        for _ in range(max_depth):
            new_rules: List[DependencyRule] = []
            for first in frontier:
                for second in self._rules:
                    if first is second:
                        continue
                    if not set(first.targets) & set(second.sources):
                        continue
                    signature = (frozenset(first.sources), frozenset(second.targets))
                    if signature in known:
                        continue
                    known.add(signature)
                    new_rules.append(DependencyRule(
                        name=f"{first.name}>>{second.name}",
                        sources=first.sources,
                        targets=second.targets,
                        procedure=first.procedure.chain(second.procedure),
                        source_key=first.source_key,
                        target_key=second.target_key,
                        derived=True,
                    ))
            if not new_rules:
                break
            derived.extend(new_rules)
            frontier = new_rules
        return derived
