"""Instance-level dependency graphs (paper Section 5, "Storing dependencies").

Schema-level dependencies are captured by :class:`~repro.dependencies.rules.RuleSet`.
Instance-level dependencies — "this particular protein sequence was derived
from that particular gene sequence" — are cell-by-cell edges and are stored
in a dependency graph.  The graph supports forward traversal (what is
affected when a cell changes), reverse traversal (where did a cell come
from), and procedure closure at the instance level.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import DependencyError

#: An instance-level cell reference: (table, tuple id, column), lower-cased
#: table and column names.
CellKey = Tuple[str, int, str]


def cell_key(table: str, tuple_id: int, column: str) -> CellKey:
    return (table.lower(), int(tuple_id), column.lower())


@dataclass(frozen=True)
class DependencyEdge:
    """A directed edge: ``source`` cell derives ``target`` cell via ``procedure``."""

    source: CellKey
    target: CellKey
    procedure: str
    executable: bool = False

    def __str__(self) -> str:
        return (f"{self.source[0]}[{self.source[1]}].{self.source[2]} --"
                f"[{self.procedure}]--> "
                f"{self.target[0]}[{self.target[1]}].{self.target[2]}")


class DependencyGraph:
    """A directed graph over cells with procedure-labelled edges."""

    def __init__(self) -> None:
        self._forward: Dict[CellKey, List[DependencyEdge]] = {}
        self._reverse: Dict[CellKey, List[DependencyEdge]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    def add_edge(self, source: CellKey, target: CellKey, procedure: str,
                 executable: bool = False) -> DependencyEdge:
        if source == target:
            raise DependencyError(f"self-dependency on cell {source}")
        edge = DependencyEdge(source, target, procedure, executable)
        existing = self._forward.get(source, [])
        if any(e.target == target and e.procedure == procedure for e in existing):
            return edge  # idempotent
        self._forward.setdefault(source, []).append(edge)
        self._reverse.setdefault(target, []).append(edge)
        self._edge_count += 1
        return edge

    def remove_cell(self, cell: CellKey) -> int:
        """Remove every edge touching ``cell`` (e.g. after a DELETE)."""
        removed = 0
        for edge in self._forward.pop(cell, []):
            self._reverse[edge.target].remove(edge)
            removed += 1
        for edge in self._reverse.pop(cell, []):
            if edge in self._forward.get(edge.source, []):
                self._forward[edge.source].remove(edge)
                removed += 1
        return removed

    @property
    def num_edges(self) -> int:
        return self._edge_count

    @property
    def num_cells(self) -> int:
        return len(set(self._forward) | set(self._reverse))

    # ------------------------------------------------------------------
    def dependents_of(self, cell: CellKey) -> List[DependencyEdge]:
        """Direct outgoing edges of ``cell``."""
        return list(self._forward.get(cell, []))

    def derivations_of(self, cell: CellKey) -> List[DependencyEdge]:
        """Direct incoming edges of ``cell`` (its immediate provenance)."""
        return list(self._reverse.get(cell, []))

    def affected_closure(self, cells: Iterable[CellKey]) -> Set[CellKey]:
        """Every cell transitively reachable from ``cells`` (excluding them)."""
        visited: Set[CellKey] = set(cells)
        queue = deque(visited)
        reached: Set[CellKey] = set()
        while queue:
            current = queue.popleft()
            for edge in self._forward.get(current, []):
                if edge.target not in visited:
                    visited.add(edge.target)
                    reached.add(edge.target)
                    queue.append(edge.target)
        return reached

    def derivation_closure(self, cell: CellKey) -> Set[CellKey]:
        """Every cell the given cell transitively derives from."""
        visited: Set[CellKey] = {cell}
        queue = deque([cell])
        reached: Set[CellKey] = set()
        while queue:
            current = queue.popleft()
            for edge in self._reverse.get(current, []):
                if edge.source not in visited:
                    visited.add(edge.source)
                    reached.add(edge.source)
                    queue.append(edge.source)
        return reached

    def procedure_closure(self, procedure: str) -> Set[CellKey]:
        """Every cell that transitively depends on edges labelled ``procedure``."""
        direct = {
            edge.target
            for edges in self._forward.values()
            for edge in edges
            if edge.procedure == procedure
        }
        return direct | self.affected_closure(direct)

    def find_cycle(self) -> Optional[List[CellKey]]:
        """Return a cycle of cells if one exists."""
        WHITE, GRAY, BLACK = 0, 1, 2
        state: Dict[CellKey, int] = {}
        stack: List[CellKey] = []

        def visit(node: CellKey) -> Optional[List[CellKey]]:
            state[node] = GRAY
            stack.append(node)
            for edge in self._forward.get(node, []):
                succ = edge.target
                if state.get(succ, WHITE) == GRAY:
                    return stack[stack.index(succ):] + [succ]
                if state.get(succ, WHITE) == WHITE:
                    cycle = visit(succ)
                    if cycle is not None:
                        return cycle
            stack.pop()
            state[node] = BLACK
            return None

        for node in list(self._forward):
            if state.get(node, WHITE) == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def edges(self) -> Iterable[DependencyEdge]:
        for edge_list in self._forward.values():
            yield from edge_list
