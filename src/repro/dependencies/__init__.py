"""Local dependency tracking: procedural dependencies, bitmaps, and the tracker."""

from repro.dependencies.bitmap import OutdatedBitmap
from repro.dependencies.graph import CellKey, DependencyEdge, DependencyGraph, cell_key
from repro.dependencies.rules import (
    ColumnKey,
    DependencyRule,
    Procedure,
    RuleSet,
    column_key,
)
from repro.dependencies.tracker import (
    OUTDATED_ANNOTATION_TABLE,
    DependencyTracker,
    UpdateImpact,
)

__all__ = [
    "OutdatedBitmap",
    "CellKey",
    "DependencyEdge",
    "DependencyGraph",
    "cell_key",
    "ColumnKey",
    "DependencyRule",
    "Procedure",
    "RuleSet",
    "column_key",
    "OUTDATED_ANNOTATION_TABLE",
    "DependencyTracker",
    "UpdateImpact",
]
