"""The dependency manager: tracking, invalidation, and re-execution.

When a database item is modified, bdbms uses the dependency rules and the
instance-level dependency graph to work out which other items are affected
(paper Section 5).  Items derived through *executable* procedures are
re-computed automatically; items derived through non-executable procedures
(lab experiments) are *marked outdated* in the table's bitmap until a user
revalidates them.  Outdated items can be reported and can be propagated as
status annotations with query answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.annotations.model import Annotation, CATEGORY_STATUS
from repro.catalog.catalog import SystemCatalog
from repro.core.errors import DependencyError
from repro.dependencies.bitmap import OutdatedBitmap
from repro.dependencies.graph import CellKey, DependencyGraph, cell_key
from repro.dependencies.rules import DependencyRule, Procedure, RuleSet

#: Annotation-table pseudo-name used for system-generated outdated markers.
OUTDATED_ANNOTATION_TABLE = "__outdated__"


@dataclass
class UpdateImpact:
    """What happened as a consequence of one modification."""

    recomputed: List[CellKey] = field(default_factory=list)
    marked_outdated: List[CellKey] = field(default_factory=list)

    def merge(self, other: "UpdateImpact") -> None:
        self.recomputed.extend(other.recomputed)
        self.marked_outdated.extend(other.marked_outdated)

    @property
    def total_affected(self) -> int:
        return len(self.recomputed) + len(self.marked_outdated)


class DependencyTracker:
    """Schema rules + instance graph + outdated bitmaps for every table."""

    def __init__(self, catalog: SystemCatalog):
        self.catalog = catalog
        self.rules = RuleSet()
        self.graph = DependencyGraph()
        self._bitmaps: Dict[str, OutdatedBitmap] = {}
        self._next_status_id = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_rule(self, rule: DependencyRule, check_cycles: bool = False) -> DependencyRule:
        """Register a schema-level procedural dependency after validating it."""
        for table, column in list(rule.sources) + list(rule.targets):
            self.catalog.table(table).schema.column(column)
        if rule.is_cross_table() and (rule.source_key is None or rule.target_key is None):
            raise DependencyError(
                f"cross-table rule {rule.name!r} needs source_key/target_key to "
                f"link source rows to dependent target rows"
            )
        return self.rules.add(rule, check_cycles=check_cycles)

    def register_instance_dependency(self, source: Tuple[str, int, str],
                                     target: Tuple[str, int, str],
                                     procedure: str,
                                     executable: bool = False) -> None:
        """Register a cell-by-cell dependency edge."""
        src = cell_key(*source)
        dst = cell_key(*target)
        for table, tuple_id, column in (src, dst):
            catalog_table = self.catalog.table(table)
            catalog_table.schema.column(column)
            if not catalog_table.has_tuple(tuple_id):
                raise DependencyError(
                    f"table {table!r} has no tuple {tuple_id} for instance dependency"
                )
        self.graph.add_edge(src, dst, procedure, executable)

    # ------------------------------------------------------------------
    # Bitmaps
    # ------------------------------------------------------------------
    def bitmap_for(self, table: str) -> OutdatedBitmap:
        key = table.lower()
        if key not in self._bitmaps:
            schema = self.catalog.table(table).schema
            self._bitmaps[key] = OutdatedBitmap(schema.name, schema.column_names)
        return self._bitmaps[key]

    def is_outdated(self, table: str, tuple_id: int, column: str) -> bool:
        return self.bitmap_for(table).is_outdated(tuple_id, column)

    def outdated_cells(self, table: str) -> List[Tuple[int, str]]:
        return self.bitmap_for(table).outdated_cells()

    def outdated_report(self) -> Dict[str, List[Tuple[int, str]]]:
        """Outdated cells of every table that has any (Section 5, reporting)."""
        report = {}
        for key, bitmap in sorted(self._bitmaps.items()):
            cells = bitmap.outdated_cells()
            if cells:
                report[bitmap.table] = cells
        return report

    # ------------------------------------------------------------------
    # Transaction support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Tuple[Any, ...]:
        """Capture the mutable tracking state at transaction BEGIN.

        Covers the outdated bitmaps, the instance-dependency adjacency (a
        DELETE prunes edges of the deleted cells), and the status-annotation
        id counter — everything ROLLBACK must rewind so that post-rollback
        query answers (including outdated-status annotations) match the
        pre-transaction ones.
        """
        graph = self.graph
        return (
            {key: bitmap.snapshot() for key, bitmap in self._bitmaps.items()},
            {cell: list(edges) for cell, edges in graph._forward.items()},
            {cell: list(edges) for cell, edges in graph._reverse.items()},
            graph._edge_count,
            self._next_status_id,
        )

    def restore_state(self, state: Tuple[Any, ...]) -> None:
        """Reset the tracking state to a :meth:`snapshot_state` capture."""
        bitmaps, forward, reverse, edge_count, next_status_id = state
        for key in list(self._bitmaps):
            if key not in bitmaps:
                del self._bitmaps[key]
        for key, snapshot in bitmaps.items():
            bitmap = self._bitmaps.get(key)
            if bitmap is not None:
                bitmap.restore(snapshot)
        self.graph._forward = {cell: list(edges)
                               for cell, edges in forward.items()}
        self.graph._reverse = {cell: list(edges)
                               for cell, edges in reverse.items()}
        self.graph._edge_count = edge_count
        self._next_status_id = next_status_id

    # ------------------------------------------------------------------
    # Modification handling
    # ------------------------------------------------------------------
    def handle_update(self, table: str, tuple_id: int,
                      changed_columns: Iterable[str]) -> UpdateImpact:
        """Propagate the effects of updating ``changed_columns`` of one tuple."""
        impact = UpdateImpact()
        visited: Set[CellKey] = set()
        for column in changed_columns:
            start = cell_key(table, tuple_id, column)
            # The modified cell itself is now current.
            self.bitmap_for(table).clear(tuple_id, column)
            self._propagate(start, impact, visited, allow_recompute=True)
        return impact

    def handle_delete(self, table: str, tuple_id: int) -> UpdateImpact:
        """Mark everything derived from a deleted tuple as outdated."""
        impact = UpdateImpact()
        visited: Set[CellKey] = set()
        schema = self.catalog.table(table).schema
        for column in schema.column_names:
            start = cell_key(table, tuple_id, column)
            self._propagate(start, impact, visited, allow_recompute=False)
            self.graph.remove_cell(start)
        self.bitmap_for(table).clear_tuple(tuple_id)
        return impact

    def procedure_changed(self, procedure_name: str) -> UpdateImpact:
        """A procedure changed (e.g. new BLAST version): refresh its closure.

        Targets of executable rules with an implementation are re-computed for
        every row; targets of non-executable rules are marked outdated.
        """
        impact = UpdateImpact()
        visited: Set[CellKey] = set()
        for rule in self.rules:
            if rule.procedure.name != procedure_name:
                continue
            source_table = next(iter(rule.source_tables))
            for source_tuple_id, _ in self.catalog.table(source_table).scan():
                for target_table, target_column in rule.targets:
                    for target_tuple_id in self._target_tuples(rule, source_table,
                                                               source_tuple_id,
                                                               target_table):
                        cell = cell_key(target_table, target_tuple_id, target_column)
                        if cell in visited:
                            continue
                        visited.add(cell)
                        if rule.procedure.can_recompute():
                            self._recompute(rule, source_table, source_tuple_id,
                                            target_table, target_tuple_id,
                                            target_column, impact, visited)
                        else:
                            self._mark_outdated(cell, impact, visited)
        return impact

    def revalidate(self, table: str, tuple_id: int, column: str,
                   new_value: Any = None) -> None:
        """A user verified an outdated item (optionally supplying a new value)."""
        if new_value is not None:
            self.catalog.table(table).update_row(tuple_id, {column: new_value})
        self.bitmap_for(table).clear(tuple_id, column)

    # ------------------------------------------------------------------
    # Propagation internals
    # ------------------------------------------------------------------
    def _propagate(self, source_cell: CellKey, impact: UpdateImpact,
                   visited: Set[CellKey], allow_recompute: bool) -> None:
        # ``visited`` tracks *target* cells that have already been handled;
        # the source itself is not short-circuited so that a freshly
        # re-computed cell cascades to its own dependents.
        source_table, source_tuple_id, source_column = source_cell
        # Schema-level rules.
        for rule in self.rules.rules_with_source(source_table, source_column):
            if rule.derived:
                continue
            for target_table, target_column in rule.targets:
                for target_tuple_id in self._target_tuples(rule, source_table,
                                                           source_tuple_id,
                                                           target_table):
                    cell = cell_key(target_table, target_tuple_id, target_column)
                    if cell in visited:
                        continue
                    if allow_recompute and rule.procedure.can_recompute():
                        self._recompute(rule, source_table, source_tuple_id,
                                        target_table, target_tuple_id,
                                        target_column, impact, visited)
                    else:
                        self._mark_outdated(cell, impact, visited)
        # Instance-level edges.
        for edge in self.graph.dependents_of(source_cell):
            if edge.target in visited:
                continue
            self._mark_outdated(edge.target, impact, visited)

    def _recompute(self, rule: DependencyRule, source_table: str,
                   source_tuple_id: int, target_table: str, target_tuple_id: int,
                   target_column: str, impact: UpdateImpact,
                   visited: Set[CellKey]) -> None:
        source = self.catalog.table(source_table)
        target = self.catalog.table(target_table)
        source_row = dict(zip(source.schema.column_names,
                              source.read_row(source_tuple_id)))
        target_row = dict(zip(target.schema.column_names,
                              target.read_row(target_tuple_id)))
        new_value = rule.procedure.implementation(source_row, target_row)
        target.update_row(target_tuple_id, {target_column: new_value})
        cell = cell_key(target_table, target_tuple_id, target_column)
        visited.add(cell)
        self.bitmap_for(target_table).clear(target_tuple_id, target_column)
        impact.recomputed.append(cell)
        # The re-computed value is itself a modification: cascade from it.
        self._propagate(cell, impact, visited, allow_recompute=True)

    def _mark_outdated(self, cell: CellKey, impact: UpdateImpact,
                       visited: Set[CellKey]) -> None:
        table, tuple_id, column = cell
        visited.add(cell)
        catalog_table = self.catalog.table(table)
        if not catalog_table.has_tuple(tuple_id):
            return
        self.bitmap_for(table).mark(tuple_id, column)
        impact.marked_outdated.append(cell)
        # Everything derived from an outdated value is itself outdated; since
        # the outdated value was not re-verified we never recompute downstream.
        self._propagate(cell, impact, visited, allow_recompute=False)

    def _target_tuples(self, rule: DependencyRule, source_table: str,
                       source_tuple_id: int, target_table: str) -> List[int]:
        if source_table.lower() == target_table.lower():
            return [source_tuple_id]
        source = self.catalog.table(source_table)
        if not source.has_tuple(source_tuple_id):
            return []
        if rule.source_key is None or rule.target_key is None:
            return []
        key_value = source.read_cell(source_tuple_id, rule.source_key)
        return self.catalog.table(target_table).find_tuples(rule.target_key, key_value)

    # ------------------------------------------------------------------
    # Status annotations (Section 5, "Reporting and annotating outdated data")
    # ------------------------------------------------------------------
    def status_annotations(self, table: str) -> Dict[Tuple[int, int], Annotation]:
        """Synthetic annotations for outdated cells, keyed by (tuple id, col pos).

        Annotated scans attach these so that query answers involving outdated
        items carry a warning annotation, as Section 5 requires.
        """
        schema = self.catalog.table(table).schema
        bitmap = self.bitmap_for(table)
        annotations: Dict[Tuple[int, int], Annotation] = {}
        for tuple_id, column in bitmap.outdated_cells():
            position = schema.column_position(column)
            self._next_status_id += 1
            annotations[(tuple_id, position)] = Annotation(
                ann_id=self._next_status_id,
                annotation_table=OUTDATED_ANNOTATION_TABLE,
                body=(f"<Annotation>OUTDATED: {schema.name}.{column} of tuple "
                      f"{tuple_id} may be invalid and needs re-verification"
                      f"</Annotation>"),
                curator="system",
                created_at=datetime.now(),
                archived=False,
                category=CATEGORY_STATUS,
            )
        return annotations
