"""Value comparison and serialization helpers shared across the engine.

SQL three-valued logic is approximated the way small engines usually do it:
``None`` (NULL) compares as unknown, and predicates treat unknown as false.
Serialization is a compact, self-describing binary format used by the slotted
pages in :mod:`repro.storage`.
"""

from __future__ import annotations

import struct
from datetime import datetime
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.errors import StorageError

# Type tags used by the record serializer.
_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BOOL = 4
_TAG_TIMESTAMP = 5


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-valued comparison: -1, 0, 1, or ``None`` when either is NULL.

    Mixed numeric types compare numerically; all other mixed-type comparisons
    fall back to comparing the string forms, which keeps the engine total
    (sorting never raises) while matching SQL behaviour for the homogeneous
    columns produced by the catalog's type coercion.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) and isinstance(right, bool):
        left, right = int(left), int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        # NaN gets a deterministic total order (PostgreSQL-style): equal to
        # itself, greater than every other number.  Without this, NaN would
        # compare "equal" to everything and join results would depend on the
        # physical join strategy.
        left_nan, right_nan = left != left, right != right
        if left_nan or right_nan:
            if left_nan and right_nan:
                return 0
            return 1 if left_nan else -1
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, datetime) and isinstance(right, datetime):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    left_s, right_s = str(left), str(right)
    if left_s < right_s:
        return -1
    if left_s > right_s:
        return 1
    return 0


def values_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL equality: ``None`` when either side is NULL."""
    cmp = compare_values(left, right)
    if cmp is None:
        return None
    return cmp == 0


class SortKey:
    """Total-order sort key that places NULLs first and handles mixed types."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        cmp = compare_values(self.value, other.value)
        return cmp is not None and cmp < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortKey):
            return NotImplemented
        if self.value is None or other.value is None:
            return self.value is None and other.value is None
        return compare_values(self.value, other.value) == 0


class ReverseSortKey:
    """Descending counterpart of :class:`SortKey`.

    Lets a multi-key ``ORDER BY`` with mixed directions compile to a single
    composite key tuple — the form the external sort's run generation and
    k-way merge need (one total order instead of repeated stable passes).
    """

    __slots__ = ("key",)

    def __init__(self, value: Any):
        self.key = SortKey(value)

    def __lt__(self, other: "ReverseSortKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReverseSortKey):
            return NotImplemented
        return self.key == other.key


def serialize_row(values: Sequence[Any]) -> bytes:
    """Serialize a row of Python values into a compact binary record."""
    parts: List[bytes] = [struct.pack("<H", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack("<B", _TAG_NULL))
        elif isinstance(value, bool):
            parts.append(struct.pack("<BB", _TAG_BOOL, 1 if value else 0))
        elif isinstance(value, int):
            parts.append(struct.pack("<Bq", _TAG_INT, value))
        elif isinstance(value, float):
            parts.append(struct.pack("<Bd", _TAG_FLOAT, value))
        elif isinstance(value, datetime):
            parts.append(struct.pack("<Bd", _TAG_TIMESTAMP, value.timestamp()))
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            parts.append(struct.pack("<BI", _TAG_TEXT, len(encoded)))
            parts.append(encoded)
        else:
            raise StorageError(f"cannot serialize value of type {type(value).__name__}")
    return b"".join(parts)


#: Pre-compiled Struct objects: ``Struct.unpack_from`` skips the per-call
#: format-string cache lookup that ``struct.unpack_from`` pays.
_STRUCT_U16 = struct.Struct("<H")
_STRUCT_I64 = struct.Struct("<q")
_STRUCT_F64 = struct.Struct("<d")
_STRUCT_U32 = struct.Struct("<I")


def deserialize_row(data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`serialize_row`."""
    if len(data) < 2:
        raise StorageError("truncated record header")
    (count,) = _STRUCT_U16.unpack_from(data, 0)
    offset = 2
    values: List[Any] = []
    try:
        return _decode_values(data, offset, count, values)
    except (struct.error, IndexError) as exc:
        raise StorageError("truncated record body") from exc


def _decode_record(data: bytes) -> Tuple[int, Tuple[Any, ...]]:
    """Decode one tuple-id-prefixed heap record (the per-record fallback)."""
    values = deserialize_row(data)
    if not values or not isinstance(values[0], int):
        raise StorageError("corrupt record: missing tuple id")
    return values[0], tuple(values[1:])


class _RecordShape:
    """A compiled decoder for one physical record layout.

    Records of one table are almost always byte-identical in *shape*: same
    column tags, same text lengths.  A shape captures that skeleton — the
    constant bytes (header, tags, text length fields) and a ``Struct`` format
    for the payload — and compiles a converter that decodes a whole run of
    same-shape records with **one** ``Struct.iter_unpack`` over their
    concatenation plus one generated list comprehension.  ``checkpoints``
    are the skeleton byte runs used to prove a record matches before the
    compiled decoder is trusted.
    """

    __slots__ = ("matches", "convert", "convert_values", "record_length")

    def __init__(self, data: bytes):
        count = data[0] | (data[1] << 8)
        if count < 1 or len(data) < 11 or data[2] != _TAG_INT:
            raise StorageError("corrupt record: missing tuple id")
        fmt: List[str] = ["<2x"]
        runs: List[Tuple[int, int]] = [(0, 2)]
        expressions: List[str] = []
        offset = 2
        out_index = 0

        def mark(position: int, length: int) -> None:
            last_offset, last_length = runs[-1]
            if last_offset + last_length == position:
                runs[-1] = (last_offset, last_length + length)
            else:
                runs.append((position, length))

        for _ in range(count):
            tag = data[offset]
            mark(offset, 1)
            offset += 1
            fmt.append("x")
            if tag == _TAG_INT:
                fmt.append("q")
                expressions.append(f"t[{out_index}]")
                out_index += 1
                offset += 8
            elif tag == _TAG_FLOAT:
                fmt.append("d")
                expressions.append(f"t[{out_index}]")
                out_index += 1
                offset += 8
            elif tag == _TAG_TEXT:
                (length,) = _STRUCT_U32.unpack_from(data, offset)
                mark(offset, 4)
                fmt.append(f"4x{length}s")
                expressions.append(f"t[{out_index}].decode('utf-8')")
                out_index += 1
                offset += 4 + length
            elif tag == _TAG_NULL:
                expressions.append("None")
            elif tag == _TAG_BOOL:
                fmt.append("B")
                expressions.append(f"bool(t[{out_index}])")
                out_index += 1
                offset += 1
            elif tag == _TAG_TIMESTAMP:
                fmt.append("d")
                expressions.append(f"_ts(t[{out_index}])")
                out_index += 1
                offset += 8
            else:
                raise StorageError(f"unknown value tag {tag}")
        if offset != len(data):
            raise StorageError("truncated record body")
        self.record_length = len(data)
        tail = ", ".join(expressions[1:]) + ("," if len(expressions) == 2 else "")
        structure = struct.Struct("".join(fmt))
        environment = {"_it": structure.iter_unpack, "_ts": datetime.fromtimestamp}
        self.convert = eval(  # noqa: S307 - source generated above
            f"lambda joined: [({expressions[0]}, ({tail})) for t in _it(joined)]",
            environment,
        )
        self.convert_values = eval(  # noqa: S307 - source generated above
            f"lambda joined: [({tail}) for t in _it(joined)]",
            environment,
        )
        # The skeleton verifier is generated too: one call with inline slice
        # comparisons instead of a Python loop per record.
        checks = []
        verify_env: dict = {}
        for index, (start, length) in enumerate(runs):
            verify_env[f"_c{index}"] = bytes(data[start:start + length])
            checks.append(f"data[{start}:{start + length}] == _c{index}")
        self.matches = eval(  # noqa: S307 - source generated above
            f"lambda data: {' and '.join(checks)}", verify_env)


#: record length -> known shapes of that length.  Bounded: once full, new
#: layouts decode through the per-record fallback instead of growing it.
_SHAPE_CACHE: dict = {}
_SHAPE_CACHE_MAX = 256
_shape_cache_size = 0


def deserialize_records(records: Sequence[bytes],
                        with_tuple_ids: bool = True) -> List[Any]:
    """Batch-decode tuple-id-prefixed heap records.

    The vectorized decode path used by batched scans: runs of records with
    the same physical shape (the overwhelmingly common case within a table)
    are concatenated and decoded with a single pre-compiled ``Struct`` pass
    — see :class:`_RecordShape` — instead of an interpreted tag-dispatch
    loop per value.  Falls back to per-record decoding for layouts beyond
    the shape-cache bound.  Each record must have been produced by
    ``serialize_row((tuple_id,) + values)`` — the layout the heap file
    writes.  Returns ``(tuple_id, values)`` pairs, or bare ``values`` tuples
    when ``with_tuple_ids`` is False (the plain-scan fast path, which skips
    one pair allocation per row).
    """
    out: List[Any] = []
    pending: List[bytes] = []
    pending_shape: Optional[_RecordShape] = None

    def flush() -> None:
        nonlocal pending
        if pending:
            convert = (pending_shape.convert if with_tuple_ids
                       else pending_shape.convert_values)
            out.extend(convert(b"".join(pending)))
            pending = []

    try:
        for data in records:
            shape = None
            candidates = _SHAPE_CACHE.get(len(data))
            if candidates is not None:
                for candidate in candidates:
                    if candidate.matches(data):
                        shape = candidate
                        break
            if shape is None:
                global _shape_cache_size
                if _shape_cache_size >= _SHAPE_CACHE_MAX:
                    flush()
                    pending_shape = None
                    tuple_id, values = _decode_record(data)
                    out.append((tuple_id, values) if with_tuple_ids else values)
                    continue
                shape = _RecordShape(data)
                _SHAPE_CACHE.setdefault(len(data), []).append(shape)
                _shape_cache_size += 1
            if shape is not pending_shape:
                flush()
                pending_shape = shape
            pending.append(data)
        flush()
    except (struct.error, IndexError) as exc:
        raise StorageError("truncated record body") from exc
    return out


def _decode_values(data: bytes, offset: int, count: int,
                   values: List[Any]) -> Tuple[Any, ...]:
    for _ in range(count):
        if offset >= len(data):
            raise StorageError("truncated record body")
        tag = data[offset]
        offset += 1
        if tag == _TAG_NULL:
            values.append(None)
        elif tag == _TAG_BOOL:
            values.append(bool(data[offset]))
            offset += 1
        elif tag == _TAG_INT:
            (number,) = _STRUCT_I64.unpack_from(data, offset)
            offset += 8
            values.append(number)
        elif tag == _TAG_FLOAT:
            (number,) = _STRUCT_F64.unpack_from(data, offset)
            offset += 8
            values.append(number)
        elif tag == _TAG_TIMESTAMP:
            (epoch,) = _STRUCT_F64.unpack_from(data, offset)
            offset += 8
            values.append(datetime.fromtimestamp(epoch))
        elif tag == _TAG_TEXT:
            (length,) = _STRUCT_U32.unpack_from(data, offset)
            offset += 4
            values.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        else:
            raise StorageError(f"unknown value tag {tag}")
    return tuple(values)
