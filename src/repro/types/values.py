"""Value comparison and serialization helpers shared across the engine.

SQL three-valued logic is approximated the way small engines usually do it:
``None`` (NULL) compares as unknown, and predicates treat unknown as false.
Serialization is a compact, self-describing binary format used by the slotted
pages in :mod:`repro.storage`.
"""

from __future__ import annotations

import struct
from datetime import datetime
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.errors import StorageError

# Type tags used by the record serializer.
_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_TEXT = 3
_TAG_BOOL = 4
_TAG_TIMESTAMP = 5


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-valued comparison: -1, 0, 1, or ``None`` when either is NULL.

    Mixed numeric types compare numerically; all other mixed-type comparisons
    fall back to comparing the string forms, which keeps the engine total
    (sorting never raises) while matching SQL behaviour for the homogeneous
    columns produced by the catalog's type coercion.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) and isinstance(right, bool):
        left, right = int(left), int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        # NaN gets a deterministic total order (PostgreSQL-style): equal to
        # itself, greater than every other number.  Without this, NaN would
        # compare "equal" to everything and join results would depend on the
        # physical join strategy.
        left_nan, right_nan = left != left, right != right
        if left_nan or right_nan:
            if left_nan and right_nan:
                return 0
            return 1 if left_nan else -1
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, datetime) and isinstance(right, datetime):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    left_s, right_s = str(left), str(right)
    if left_s < right_s:
        return -1
    if left_s > right_s:
        return 1
    return 0


def values_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL equality: ``None`` when either side is NULL."""
    cmp = compare_values(left, right)
    if cmp is None:
        return None
    return cmp == 0


class SortKey:
    """Total-order sort key that places NULLs first and handles mixed types."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        if self.value is None:
            return other.value is not None
        if other.value is None:
            return False
        cmp = compare_values(self.value, other.value)
        return cmp is not None and cmp < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortKey):
            return NotImplemented
        if self.value is None or other.value is None:
            return self.value is None and other.value is None
        return compare_values(self.value, other.value) == 0


def serialize_row(values: Sequence[Any]) -> bytes:
    """Serialize a row of Python values into a compact binary record."""
    parts: List[bytes] = [struct.pack("<H", len(values))]
    for value in values:
        if value is None:
            parts.append(struct.pack("<B", _TAG_NULL))
        elif isinstance(value, bool):
            parts.append(struct.pack("<BB", _TAG_BOOL, 1 if value else 0))
        elif isinstance(value, int):
            parts.append(struct.pack("<Bq", _TAG_INT, value))
        elif isinstance(value, float):
            parts.append(struct.pack("<Bd", _TAG_FLOAT, value))
        elif isinstance(value, datetime):
            parts.append(struct.pack("<Bd", _TAG_TIMESTAMP, value.timestamp()))
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            parts.append(struct.pack("<BI", _TAG_TEXT, len(encoded)))
            parts.append(encoded)
        else:
            raise StorageError(f"cannot serialize value of type {type(value).__name__}")
    return b"".join(parts)


def deserialize_row(data: bytes) -> Tuple[Any, ...]:
    """Inverse of :func:`serialize_row`."""
    if len(data) < 2:
        raise StorageError("truncated record header")
    (count,) = struct.unpack_from("<H", data, 0)
    offset = 2
    values: List[Any] = []
    try:
        return _decode_values(data, offset, count, values)
    except struct.error as exc:
        raise StorageError("truncated record body") from exc


def _decode_values(data: bytes, offset: int, count: int,
                   values: List[Any]) -> Tuple[Any, ...]:
    for _ in range(count):
        if offset >= len(data):
            raise StorageError("truncated record body")
        (tag,) = struct.unpack_from("<B", data, offset)
        offset += 1
        if tag == _TAG_NULL:
            values.append(None)
        elif tag == _TAG_BOOL:
            (flag,) = struct.unpack_from("<B", data, offset)
            offset += 1
            values.append(bool(flag))
        elif tag == _TAG_INT:
            (number,) = struct.unpack_from("<q", data, offset)
            offset += 8
            values.append(number)
        elif tag == _TAG_FLOAT:
            (number,) = struct.unpack_from("<d", data, offset)
            offset += 8
            values.append(number)
        elif tag == _TAG_TIMESTAMP:
            (epoch,) = struct.unpack_from("<d", data, offset)
            offset += 8
            values.append(datetime.fromtimestamp(epoch))
        elif tag == _TAG_TEXT:
            (length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            values.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        else:
            raise StorageError(f"unknown value tag {tag}")
    return tuple(values)
