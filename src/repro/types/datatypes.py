"""Column data types supported by the bdbms reproduction.

The paper stores ordinary relational attributes (gene identifiers, names),
long biological sequences, XML-formatted annotation bodies, and timestamps
for annotation archival.  We model these with a small, closed set of types;
sequences and XML are stored as text but carry their own type tag so that
access methods (SP-GiST tries, the SBC-tree) and the annotation manager can
recognise them.
"""

from __future__ import annotations

import enum
from datetime import datetime
from typing import Any, Optional

from repro.core.errors import TypeMismatchError


class DataType(enum.Enum):
    """Enumeration of column types."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"
    #: Biological sequence data (DNA, protein primary/secondary structure).
    SEQUENCE = "SEQUENCE"
    #: XML-formatted values (annotation bodies, provenance records).
    XML = "XML"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a SQL type name (case-insensitive, with common aliases)."""
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "FLOAT": cls.FLOAT,
            "REAL": cls.FLOAT,
            "DOUBLE": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "DECIMAL": cls.FLOAT,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "TIMESTAMP": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
            "SEQUENCE": cls.SEQUENCE,
            "XML": cls.XML,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown data type: {name!r}")
        return aliases[normalized]


#: Types whose Python representation is a string.
_TEXT_LIKE = {DataType.TEXT, DataType.SEQUENCE, DataType.XML}

#: ISO format used when timestamps are written out as text.
TIMESTAMP_FORMAT = "%Y-%m-%d %H:%M:%S.%f"


def coerce(value: Any, dtype: DataType, nullable: bool = True) -> Any:
    """Coerce ``value`` to the Python representation of ``dtype``.

    ``None`` is the SQL NULL and is allowed whenever ``nullable`` is true.
    Raises :class:`TypeMismatchError` when the value cannot be represented.
    """
    if value is None:
        if not nullable:
            raise TypeMismatchError("NULL value for a NOT NULL column")
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT")
    if dtype in _TEXT_LIKE:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to {dtype.value}")
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false", "t", "f"):
            return value.lower() in ("true", "t")
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")
    if dtype is DataType.TIMESTAMP:
        if isinstance(value, datetime):
            return value
        if isinstance(value, (int, float)):
            return datetime.fromtimestamp(float(value))
        if isinstance(value, str):
            return parse_timestamp(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to TIMESTAMP")
    raise TypeMismatchError(f"unsupported data type {dtype!r}")


def parse_timestamp(text: str) -> datetime:
    """Parse a timestamp literal in one of a few tolerant formats."""
    candidates = (
        TIMESTAMP_FORMAT,
        "%Y-%m-%d %H:%M:%S",
        "%Y-%m-%dT%H:%M:%S.%f",
        "%Y-%m-%dT%H:%M:%S",
        "%Y-%m-%d",
    )
    for fmt in candidates:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise TypeMismatchError(f"cannot parse timestamp literal {text!r}")


def format_value(value: Any, dtype: Optional[DataType] = None) -> str:
    """Render a value for display (used by examples and the REPL-ish API)."""
    if value is None:
        return "NULL"
    if isinstance(value, datetime):
        return value.strftime(TIMESTAMP_FORMAT)
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return repr(value)
    return str(value)
