"""Value model: data types, coercion, comparison, and record serialization."""

from repro.types.datatypes import DataType, coerce, format_value, parse_timestamp
from repro.types.values import (
    SortKey,
    compare_values,
    deserialize_row,
    serialize_row,
    values_equal,
)

__all__ = [
    "DataType",
    "coerce",
    "format_value",
    "parse_timestamp",
    "SortKey",
    "compare_values",
    "values_equal",
    "serialize_row",
    "deserialize_row",
]
