"""Wire protocol shared by the network server and ``repro.client``.

Framing is deliberately minimal: every message is one UTF-8 JSON document
prefixed by its byte length as a 4-byte big-endian unsigned integer.  JSON
keeps the protocol inspectable (``nc`` + a hex dump is a usable debugger)
and the length prefix makes message boundaries explicit, so neither side
ever parses a partial document.

Requests are objects with an ``op`` field; the server answers every request
with exactly one response frame — ``{"ok": true, ...}`` on success or
``{"ok": false, "error": {...}}`` on failure (see :func:`encode_error`).
Because responses are strictly one-per-request in order, the client never
needs request ids.

Values cross the wire with a small tagging scheme for what JSON cannot
express natively: timestamps become ``{"$ts": "<ISO 8601>"}`` and the
paper's annotations ride next to their rows as plain field dicts
(:func:`encode_annotation`), reconstructed into real
:class:`~repro.annotations.model.Annotation` objects client-side so
``row.annotations`` behaves identically in-process and over the network.
"""

from __future__ import annotations

import json
import struct
from datetime import datetime
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.annotations.model import Annotation
from repro.core.errors import OperationalError

#: Protocol revision, exchanged in the ``hello`` handshake.
PROTOCOL_VERSION = 1

#: struct format of the frame length prefix (4-byte big-endian unsigned).
_LENGTH = struct.Struct(">I")

#: Hard ceiling a frame length may announce before the peer drops the
#: connection — a corrupt or hostile prefix must not trigger a huge alloc.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(OperationalError):
    """A malformed frame or an out-of-protocol message."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    """One wire frame: length prefix + JSON payload."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def read_length(prefix: bytes, limit: int = MAX_MESSAGE_BYTES) -> int:
    """Validate and unpack a length prefix."""
    if len(prefix) != _LENGTH.size:
        raise ProtocolError("truncated frame length prefix")
    (length,) = _LENGTH.unpack(prefix)
    if length > limit:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {limit}-byte limit")
    return length


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """A single column value in wire form (see module doc for the tags)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime):
        return {"$ts": value.isoformat()}
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    # Engine value domains beyond the above do not exist today; keep the
    # frame decodable rather than failing the whole result.
    return {"$repr": repr(value)}


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$ts" in value:
            return datetime.fromisoformat(value["$ts"])
        if "$bytes" in value:
            return bytes.fromhex(value["$bytes"])
        if "$repr" in value:
            return value["$repr"]
        raise ProtocolError(f"unknown value tag {sorted(value)!r}")
    return value


def encode_values(values: Sequence[Any]) -> List[Any]:
    return [encode_value(value) for value in values]


def decode_values(values: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(decode_value(value) for value in values)


# ---------------------------------------------------------------------------
# Annotations
# ---------------------------------------------------------------------------
def encode_annotation(annotation: Annotation) -> Dict[str, Any]:
    return {
        "ann_id": annotation.ann_id,
        "annotation_table": annotation.annotation_table,
        "body": annotation.body,
        "curator": annotation.curator,
        "created_at": annotation.created_at.isoformat(),
        "archived": annotation.archived,
        "category": annotation.category,
    }


def decode_annotation(fields: Dict[str, Any]) -> Annotation:
    return Annotation(
        ann_id=fields["ann_id"],
        annotation_table=fields["annotation_table"],
        body=fields["body"],
        curator=fields.get("curator", "unknown"),
        created_at=datetime.fromisoformat(fields["created_at"]),
        archived=fields.get("archived", False),
        category=fields.get("category", "comment"),
    )


def encode_row(values: Sequence[Any],
               annotations: Optional[Sequence[Any]]) -> Dict[str, Any]:
    """One result row: ``v`` is the value tuple, ``a`` the per-column
    annotation lists (present only when the row carries any)."""
    encoded: Dict[str, Any] = {"v": encode_values(values)}
    if annotations is not None and any(annotations):
        encoded["a"] = [[encode_annotation(a) for a in sorted(
            column, key=lambda a: (a.annotation_table, a.ann_id))]
            for column in annotations]
    return encoded


def decode_row(encoded: Dict[str, Any]) -> Tuple[Tuple[Any, ...],
                                                 Optional[List[set]]]:
    values = decode_values(encoded["v"])
    raw = encoded.get("a")
    if raw is None:
        return values, None
    return values, [{decode_annotation(a) for a in column} for column in raw]


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------
def encode_error(exc: BaseException, *, code: Optional[str] = None,
                 retryable: bool = False) -> Dict[str, Any]:
    """The ``error`` object of a failure response.

    ``type`` is the PEP 249 class name the client re-raises (anything that
    is not one maps to ``OperationalError`` client-side); ``retryable``
    marks rejections that did no work — admission control and lock
    timeouts — which a client may safely re-submit.
    """
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "code": code,
        "retryable": retryable,
    }


def error_response(exc: BaseException, *, code: Optional[str] = None,
                   retryable: bool = False) -> Dict[str, Any]:
    return {"ok": False, "error": encode_error(exc, code=code,
                                               retryable=retryable)}


__all__ = [
    "PROTOCOL_VERSION", "MAX_MESSAGE_BYTES", "ProtocolError",
    "encode_frame", "decode_payload", "read_length",
    "encode_value", "decode_value", "encode_values", "decode_values",
    "encode_annotation", "decode_annotation", "encode_row", "decode_row",
    "encode_error", "error_response",
]
