"""Asyncio TCP front end over the DB-API surface.

One :class:`DatabaseServer` owns (or borrows) a single
:class:`~repro.core.database.Database` and serves many client connections
over the length-prefixed JSON protocol of :mod:`repro.server.protocol`.
The event loop only shuffles frames; every engine call runs on a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` so a slow query never
stalls the accept loop or other clients' fetches.

Concurrency model
-----------------
* Each client session wraps a non-owning DB-API connection
  (``database.connect(user)``) and every request executes inside
  :func:`repro.core.transactions.session_scope`, making the *session* — not
  whichever pooled worker thread picked the request up — the owner of locks
  and transactions.  A ``BEGIN`` handled by worker A is committed by
  whichever worker handles the ``COMMIT``.
* Read-only statements execute under the transaction manager's shared read
  lock and are **materialized before the lock is released**
  (snapshot-on-scan): the batches a client later fetches can never be torn
  by a concurrent commit.  Writers take the existing exclusive write side.
* Admission control is strict, never queueing unboundedly: connections
  beyond ``max_connections`` are refused at accept with a retryable error
  frame, and engine calls beyond ``max_inflight`` are refused with
  ``code="server_busy"`` before any work happens.  Lock waits are bounded
  by ``lock_timeout_seconds`` (surfaced as a retryable ``lock_timeout``),
  which keeps the bounded worker pool deadlock-free even when every worker
  is parked behind one long writer.

Results are materialized server-side per session and fetched in
client-sized batches; a result is freed when drained, explicitly closed,
or the session disconnects.  Disconnect cleanup rolls back the session's
open transaction, releasing its locks.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import (
    AuthorizationError,
    BdbmsError,
    Error,
    OperationalError,
    TransactionTimeoutError,
    map_error,
)
from repro.core.transactions import session_scope
from repro.executor.row import Row
from repro.server import protocol
from repro.storage.wal import InjectedCrash

#: Default number of rows shipped per fetch frame when the client does not
#: ask for a specific count.
DEFAULT_FETCH_ROWS = 256


def _chained_timeout(exc: BaseException) -> bool:
    """True when ``exc`` is, or wraps, a lock-acquisition timeout."""
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        if isinstance(current, TransactionTimeoutError):
            return True
        seen.add(id(current))
        current = current.__cause__ or current.__context__
    return False


@dataclass
class ServerConfig:
    """Knobs of the network front end (see docs/SERVER.md for guidance)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read ``server.port`` after start.
    port: int = 0
    #: Admission control: connections beyond this are refused at accept.
    max_connections: int = 64
    #: Admission control: engine calls in flight across all sessions beyond
    #: this are refused with a retryable ``server_busy`` error.
    max_inflight: int = 8
    #: Size of the worker pool running engine calls off the event loop.
    worker_threads: int = 4
    #: Upper bound on any single lock wait (read or write).  Expiry raises
    #: :class:`TransactionTimeoutError`, surfaced as retryable
    #: ``lock_timeout`` — the statement did no work and may be re-sent.
    lock_timeout_seconds: float = 10.0
    #: Optional shared secret; when set, ``hello`` must carry it as
    #: ``token`` or the connection is refused.
    auth_token: Optional[str] = None
    #: Per-frame size ceiling (both directions).
    max_message_bytes: int = protocol.MAX_MESSAGE_BYTES
    #: Materialized results a single session may hold open concurrently.
    max_open_results: int = 32

    def validate(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be at least 1")
        if self.lock_timeout_seconds <= 0:
            raise ValueError("lock_timeout_seconds must be positive")


@dataclass
class ServerStats:
    """Counters mutated only on the event-loop thread."""

    connections_accepted: int = 0
    connections_rejected: int = 0
    queries_rejected: int = 0
    requests_served: int = 0
    active_connections: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "connections_accepted": self.connections_accepted,
            "connections_rejected": self.connections_rejected,
            "queries_rejected": self.queries_rejected,
            "requests_served": self.requests_served,
            "active_connections": self.active_connections,
        }


class _Result:
    """A materialized result a session fetches from in batches."""

    __slots__ = ("columns", "rows", "position")

    def __init__(self, columns: List[str], rows: List[Row]):
        self.columns = columns
        self.rows = rows
        self.position = 0


class _Session:
    """Per-connection state: identity, DB-API connection, open results."""

    def __init__(self, session_id: int, connection: Any):
        self.session_id = session_id
        self.connection = connection
        self.results: Dict[int, _Result] = {}
        self._result_ids = itertools.count(1)

    def next_result_id(self) -> int:
        return next(self._result_ids)


class DatabaseServer:
    """The asyncio TCP server (see module doc for the concurrency model)."""

    def __init__(self, database: Any = None, *, path: Optional[str] = None,
                 config: Optional[ServerConfig] = None,
                 **database_kwargs: Any):
        if database is not None and (path is not None or database_kwargs):
            raise ValueError("pass either a Database or a path, not both")
        if database is None:
            from repro.core.database import Database
            database = Database(path, **database_kwargs)
            self._owns_database = True
        else:
            self._owns_database = False
        self.database = database
        self.config = config or ServerConfig()
        self.config.validate()
        self.stats = ServerStats()
        self._transactions = database.engine.transactions
        self._sessions = itertools.count(1)
        self._inflight = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Set when an :class:`InjectedCrash` fires mid-request: the process
        #: is considered dead — no response, no rollback, no flush-on-close —
        #: so tests observe exactly the state a real crash would leave.
        self.crashed = False
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.worker_threads,
            thread_name_prefix="repro-server")
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if self._owns_database and not self.crashed:
            self.database.close()

    # -- threaded harness (tests, quickstart, benchmarks) ---------------
    def start_in_thread(self) -> "DatabaseServer":
        """Run the server on a background thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="repro-server-loop", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _thread_main(self) -> None:
        asyncio.run(self._thread_body())

    async def _thread_body(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            await self.start()
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.stop()

    def shutdown(self) -> None:
        """Stop a :meth:`start_in_thread` server and join its loop thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        self._thread = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if self.stats.active_connections >= self.config.max_connections:
            self.stats.connections_rejected += 1
            await self._send(writer, protocol.error_response(
                OperationalError(
                    f"server is at its connection limit "
                    f"({self.config.max_connections}); retry later"),
                code="server_busy", retryable=True))
            writer.close()
            return
        self.stats.active_connections += 1
        self.stats.connections_accepted += 1
        session: Optional[_Session] = None
        try:
            session = await self._handshake(reader, writer)
            if session is not None:
                await self._serve_session(session, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-frame; cleanup below
        except asyncio.CancelledError:
            pass  # loop teardown cancelled us; still clean up below
        except InjectedCrash:
            self.crashed = True  # simulated process death: drop everything
        except protocol.ProtocolError as exc:
            await self._send_quietly(writer, protocol.error_response(exc))
        finally:
            self.stats.active_connections -= 1
            if session is not None and not self.crashed:
                try:
                    await self._cleanup_session(session)
                except asyncio.CancelledError:
                    # Teardown cancelled the await mid-cleanup: finish
                    # inline so the session's rollback and lock release
                    # still happen, and end the task uncancelled (a
                    # cancelled handler task makes asyncio.streams log a
                    # spurious 'Exception in callback').
                    try:
                        self._cleanup_sync(session)
                    except Exception:
                        pass
            writer.close()

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> Optional[_Session]:
        request = await self._read_frame(reader)
        if request is None:
            return None
        if request.get("op") != "hello":
            await self._send(writer, protocol.error_response(
                protocol.ProtocolError("first frame must be 'hello'")))
            return None
        token = self.config.auth_token
        if token is not None and request.get("token") != token:
            await self._send(writer, protocol.error_response(
                map_error(AuthorizationError("authentication failed")),
                code="auth_failed"))
            return None
        user = request.get("user", "admin")
        connection = self.database.connect(user=user)
        session = _Session(next(self._sessions), connection)
        await self._send(writer, {
            "ok": True,
            "server": "repro-bdbms",
            "protocol": protocol.PROTOCOL_VERSION,
            "session": session.session_id,
        })
        return session

    async def _serve_session(self, session: _Session,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        while True:
            request = await self._read_frame(reader)
            if request is None:
                return
            op = request.get("op")
            if op == "close":
                await self._send(writer, {"ok": True})
                return
            response = await self._dispatch(session, request)
            self.stats.requests_served += 1
            await self._send(writer, response)

    async def _dispatch(self, session: _Session,
                        request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        # Fetch and bookkeeping ops never touch the engine: they slice
        # already-materialized rows, so they bypass admission control and
        # stay responsive while the worker pool is saturated.
        if op == "fetch":
            return self._op_fetch(session, request)
        if op == "close_result":
            session.results.pop(request.get("result_id"), None)
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.stats.as_dict()}
        if op not in ("execute", "executemany", "script", "commit",
                      "rollback"):
            return protocol.error_response(
                protocol.ProtocolError(f"unknown operation {op!r}"))
        if self._inflight >= self.config.max_inflight:
            self.stats.queries_rejected += 1
            return protocol.error_response(
                OperationalError(
                    f"server is at its in-flight query limit "
                    f"({self.config.max_inflight}); retry later"),
                code="server_busy", retryable=True)
        self._inflight += 1
        try:
            assert self._loop is not None and self._executor is not None
            return await self._loop.run_in_executor(
                self._executor, self._run_engine_op, session, request)
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Engine calls (worker threads)
    # ------------------------------------------------------------------
    def _run_engine_op(self, session: _Session,
                       request: Dict[str, Any]) -> Dict[str, Any]:
        scope_id = (id(self), session.session_id)
        try:
            with session_scope(scope_id,
                               lock_timeout=self.config.lock_timeout_seconds):
                return self._engine_op(session, request)
        except InjectedCrash:
            raise  # process death: propagate, never answer
        except (Error, BdbmsError) as exc:
            # The DB-API layer wraps engine errors (a lock timeout leaves
            # the cursor as OperationalError with the TransactionTimeoutError
            # chained as its cause), so walk the chain to spot timeouts and
            # surface them as the documented retryable rejection.
            if _chained_timeout(exc):
                return protocol.error_response(map_error(exc),
                                               code="lock_timeout",
                                               retryable=True)
            if isinstance(exc, Error):
                return protocol.error_response(exc)
            return protocol.error_response(map_error(exc))

    def _engine_op(self, session: _Session,
                   request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        connection = session.connection
        if op == "commit":
            connection.commit()
            return {"ok": True}
        if op == "rollback":
            connection.rollback()
            return {"ok": True}
        if op == "script":
            cursor = connection.executescript(request.get("sql", ""))
            return {"ok": True, "kind": "summary",
                    "rowcount": cursor.rowcount, "lastrowid": None}
        sql = request.get("sql", "")
        if op == "executemany":
            params = [protocol.decode_values(row)
                      for row in request.get("params", [])]
            cursor = connection.cursor()
            cursor.executemany(sql, params)
            return {"ok": True, "kind": "summary",
                    "rowcount": cursor.rowcount,
                    "lastrowid": cursor.lastrowid}
        params = protocol.decode_values(request.get("params", []))
        prepared = connection._prepare(sql)
        cursor = connection.cursor()
        if prepared.is_query:
            # Snapshot-on-scan: execute *and materialize* under the shared
            # read lock, so the rows this session later fetches were all
            # produced against one committed state.
            with self._transactions.read_access():
                cursor.execute(sql, params)
                rows = cursor.fetchall()
            return self._store_result(session, cursor, rows)
        cursor.execute(sql, params)
        if cursor._stream is not None:  # EXPLAIN renders as a row stream
            return self._store_result(session, cursor, cursor.fetchall())
        return {"ok": True, "kind": "summary",
                "rowcount": cursor.rowcount, "lastrowid": cursor.lastrowid}

    def _store_result(self, session: _Session, cursor: Any,
                      rows: List[Row]) -> Dict[str, Any]:
        if len(session.results) >= self.config.max_open_results:
            return protocol.error_response(
                OperationalError(
                    f"session holds {len(session.results)} open results "
                    f"(limit {self.config.max_open_results}); fetch or "
                    f"close some first"),
                code="too_many_results")
        columns = [column[0] for column in cursor.description]
        result_id = session.next_result_id()
        session.results[result_id] = _Result(columns, rows)
        return {"ok": True, "kind": "rows", "result_id": result_id,
                "columns": columns, "rowcount": len(rows)}

    # ------------------------------------------------------------------
    # Fetch (event-loop thread: pure memory)
    # ------------------------------------------------------------------
    def _op_fetch(self, session: _Session,
                  request: Dict[str, Any]) -> Dict[str, Any]:
        result = session.results.get(request.get("result_id"))
        if result is None:
            return protocol.error_response(OperationalError(
                "no such result (already drained, closed, or never opened)"))
        count = request.get("count", DEFAULT_FETCH_ROWS)
        if not isinstance(count, int) or count <= 0:
            count = len(result.rows) - result.position
        batch = result.rows[result.position:result.position + count]
        result.position += len(batch)
        done = result.position >= len(result.rows)
        if done:  # auto-free: the common full-drain path needs no extra op
            session.results.pop(request.get("result_id"), None)
        return {
            "ok": True,
            "rows": [protocol.encode_row(
                row.values,
                row.annotations if row.has_annotations() else None)
                for row in batch],
            "done": done,
        }

    # ------------------------------------------------------------------
    # Cleanup and I/O helpers
    # ------------------------------------------------------------------
    async def _cleanup_session(self, session: _Session) -> None:
        session.results.clear()
        if self._executor is None:
            return
        assert self._loop is not None
        try:
            await self._loop.run_in_executor(
                self._executor, self._cleanup_sync, session)
        except Exception:
            pass  # a failed rollback must not take the server down

    def _cleanup_sync(self, session: _Session) -> None:
        scope_id = (id(self), session.session_id)
        with session_scope(scope_id,
                           lock_timeout=self.config.lock_timeout_seconds):
            # Non-owning close: rolls back this session's open transaction,
            # which releases its write lock.
            session.connection.close()

    async def _read_frame(self,
                          reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
        try:
            prefix = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = protocol.read_length(prefix, self.config.max_message_bytes)
        payload = await reader.readexactly(length)
        return protocol.decode_payload(payload)

    async def _send(self, writer: asyncio.StreamWriter,
                    message: Dict[str, Any]) -> None:
        writer.write(protocol.encode_frame(message))
        await writer.drain()

    async def _send_quietly(self, writer: asyncio.StreamWriter,
                            message: Dict[str, Any]) -> None:
        try:
            await self._send(writer, message)
        except (ConnectionError, RuntimeError):
            pass


def start_server(database: Any = None, *, path: Optional[str] = None,
                 config: Optional[ServerConfig] = None,
                 **database_kwargs: Any) -> DatabaseServer:
    """Start a server on a background thread; returns once it is listening.

    Convenience for tests, benchmarks, and the quickstart.  Stop it with
    ``server.shutdown()``.
    """
    server = DatabaseServer(database, path=path, config=config,
                            **database_kwargs)
    return server.start_in_thread()


__all__ = ["ServerConfig", "ServerStats", "DatabaseServer", "start_server",
           "DEFAULT_FETCH_ROWS"]
