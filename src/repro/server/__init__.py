"""Network front end: a TCP server speaking the repro wire protocol.

>>> from repro.server import start_server
>>> import repro.client
>>> server = start_server()          # in-memory database, ephemeral port
>>> conn = repro.client.connect(port=server.port)
>>> conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").rowcount
0
>>> conn.close(); server.shutdown()

See docs/SERVER.md for the protocol, the admission-control knobs, and the
isolation guarantees.
"""

from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.server import (
    DatabaseServer,
    ServerConfig,
    ServerStats,
    start_server,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "DatabaseServer",
    "ServerConfig",
    "ServerStats",
    "start_server",
]
