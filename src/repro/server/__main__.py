"""``python -m repro.server`` — run a file-backed server from the shell.

Example::

    python -m repro.server --path /tmp/demo.db --port 7474
"""

from __future__ import annotations

import argparse
import asyncio

from repro.server.server import DatabaseServer, ServerConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over TCP.")
    parser.add_argument("--path", default=None,
                        help="database file (default: in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--worker-threads", type=int, default=4)
    parser.add_argument("--lock-timeout", type=float, default=10.0,
                        metavar="SECONDS")
    parser.add_argument("--auth-token", default=None)
    args = parser.parse_args(argv)

    config = ServerConfig(
        host=args.host, port=args.port,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        worker_threads=args.worker_threads,
        lock_timeout_seconds=args.lock_timeout,
        auth_token=args.auth_token)
    server = DatabaseServer(path=args.path, config=config)
    print(f"repro server listening on {args.host}:{args.port} "
          f"({'file ' + args.path if args.path else 'in-memory'})")
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
