"""Write-ahead log: the durability substrate for transactions.

The data file managed by :class:`~repro.storage.disk.FileDiskManager` is a
*materialization*, not the source of truth: the system catalog, annotation
registry, index registry, and grants all live in memory, so the only way to
rebuild a database after a restart is to replay its logical history.  The WAL
records exactly that history — one checksummed frame per committed
transaction, holding the transaction's redo operations (row inserts/updates/
deletes, table/index/annotation DDL, grants) — and recovery replays the log
from the beginning through the normal storage paths (see
``Database.__init__`` and :mod:`repro.core.transactions`).

Commit protocol (ARIES-lite, redo-only):

* a transaction buffers its redo operations in memory; nothing is logged
  until commit, so an aborted transaction simply never reaches the log;
* at commit the whole batch is appended as a *single frame* — length prefix,
  CRC32, pickled payload — so torn writes are detected as a checksum/length
  mismatch and atomicity falls out of the framing;
* the commit is acknowledged only after the frame is fsync'ed
  (``synchronous = "full"``); with ``group_commit`` enabled, concurrent
  committers elect a leader that fsyncs once for every frame appended so
  far, batching N commits into one fsync.

Recovery scans frames in order, stops at the first short or corrupt frame
(the torn tail of an interrupted append), truncates the log there, and
replays everything before it.

For deterministic crash testing, :class:`FileWAL` (and the file disk
manager) expose *crash points*: setting ``wal.fail_point`` makes the next
append or sync raise :class:`InjectedCrash` at the named point, leaving the
on-disk state exactly as a power loss at that instant would.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from typing import Any, List, Optional

from repro.core.errors import StorageError

#: File magic: identifies (and versions) the log format.
WAL_MAGIC = b"BDBWAL01"

#: Frame header: 4-byte payload length + 4-byte CRC32 of the payload.
_FRAME_HEADER = struct.Struct("<II")

#: Crash points honoured by :meth:`FileWAL.append` / :meth:`FileWAL.sync`.
CRASH_MID_APPEND = "mid_append"        # torn frame: only a prefix reaches disk
CRASH_AFTER_APPEND = "after_append"    # full frame written, fsync never runs
CRASH_BEFORE_FSYNC = "before_fsync"    # sync reached, crash just before fsync
WAL_CRASH_POINTS = (CRASH_MID_APPEND, CRASH_AFTER_APPEND, CRASH_BEFORE_FSYNC)


class InjectedCrash(Exception):
    """Raised by a fault-injection crash point to simulate a process crash.

    Deliberately *not* a :class:`~repro.core.errors.BdbmsError`: the DB-API
    error translation must not catch it, exactly as it could not catch a
    power loss.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


def encode_frame(ops: List[Any]) -> bytes:
    """Serialize one transaction's redo operations into a framed record."""
    payload = pickle.dumps(ops, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class FileWAL:
    """Append-only write-ahead log stored next to the database file.

    ``append`` and ``sync`` are thread-safe; the commit path appends under
    the log mutex and waits for durability *outside* it, which is what lets
    group commit overlap one committer's fsync with other committers' work.
    """

    def __init__(self, path: str, synchronous: bool = True,
                 group_commit: bool = True):
        self.path = path
        self.synchronous = synchronous
        self.group_commit = group_commit
        #: One-shot fault-injection point (see WAL_CRASH_POINTS); cleared
        #: when it fires so the test can reopen and recover.
        self.fail_point: Optional[str] = None
        self._mutex = threading.Lock()
        self._sync_cond = threading.Condition()
        self._syncing = False
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() == 0:
            self._file.write(WAL_MAGIC)
            self._file.flush()
        #: Byte offset up to which frames have been appended / fsync'ed.
        self._appended_lsn = self._file.tell()
        self._synced_lsn = self._appended_lsn if synchronous else float("inf")
        #: fsync calls actually issued (observability for the benchmarks:
        #: group commit's whole point is that this grows slower than the
        #: number of commits).
        self.fsync_count = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _take_crash(self, point: str) -> bool:
        if self.fail_point == point:
            self.fail_point = None
            return True
        return False

    def append(self, ops: List[Any]) -> int:
        """Append one commit frame; returns its LSN (end byte offset).

        The frame is written to the OS (buffered + flushed) but *not*
        fsync'ed — call :meth:`sync` with the returned LSN before
        acknowledging the commit.
        """
        frame = encode_frame(ops)
        with self._mutex:
            self._file.seek(0, os.SEEK_END)
            if self._take_crash(CRASH_MID_APPEND):
                # A torn write: only a prefix of the frame reaches the OS.
                self._file.write(frame[:max(1, len(frame) // 2)])
                self._file.flush()
                raise InjectedCrash(CRASH_MID_APPEND)
            self._file.write(frame)
            self._file.flush()
            self._appended_lsn = self._file.tell()
            lsn = self._appended_lsn
            if self._take_crash(CRASH_AFTER_APPEND):
                raise InjectedCrash(CRASH_AFTER_APPEND)
        return lsn

    def sync(self, lsn: int) -> None:
        """Block until the log is durable at least up to ``lsn``.

        ``synchronous`` off: no-op (the OS decides when bytes hit disk).
        ``group_commit`` off: every caller fsyncs for itself.
        ``group_commit`` on: the first waiter becomes the leader, fsyncs once
        for everything appended so far, and wakes every follower whose frame
        that covered.
        """
        if not self.synchronous:
            return
        if not self.group_commit:
            with self._mutex:
                if self._synced_lsn < lsn:
                    if self._take_crash(CRASH_BEFORE_FSYNC):
                        raise InjectedCrash(CRASH_BEFORE_FSYNC)
                    os.fsync(self._file.fileno())
                    self.fsync_count += 1
                    self._synced_lsn = self._appended_lsn
            return
        while True:
            with self._sync_cond:
                if self._synced_lsn >= lsn:
                    return
                if self._syncing:
                    self._sync_cond.wait()
                    continue
                self._syncing = True
            synced = False
            try:
                with self._mutex:
                    target = self._appended_lsn
                    if self._take_crash(CRASH_BEFORE_FSYNC):
                        raise InjectedCrash(CRASH_BEFORE_FSYNC)
                # fsync outside the mutex: committers keep appending (and the
                # engine keeps executing) while the disk works.
                os.fsync(self._file.fileno())
                self.fsync_count += 1
                synced = True
            finally:
                with self._sync_cond:
                    self._syncing = False
                    if synced:
                        self._synced_lsn = max(self._synced_lsn, target)
                    self._sync_cond.notify_all()

    def commit(self, ops: List[Any]) -> int:
        """Append + sync in one call (used for auto-committed single writes)."""
        lsn = self.append(ops)
        self.sync(lsn)
        return lsn

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def read_frames(self) -> List[List[Any]]:
        """Read every intact frame, truncating a torn/corrupt tail in place.

        Returns the redo-operation batches of committed transactions in log
        order.  The first frame whose header or checksum does not hold marks
        the tail of an interrupted append; the log is truncated there so the
        next append cannot splice new bytes onto garbage.
        """
        with self._mutex:
            self._file.flush()
            self._file.seek(0)
            data = self._file.read()
        if not data.startswith(WAL_MAGIC):
            raise StorageError(
                f"{self.path} is not a bdbms write-ahead log")
        frames: List[List[Any]] = []
        offset = len(WAL_MAGIC)
        end = len(data)
        while offset + _FRAME_HEADER.size <= end:
            length, crc = _FRAME_HEADER.unpack_from(data, offset)
            start = offset + _FRAME_HEADER.size
            if start + length > end:
                break  # torn tail: frame body never fully reached disk
            payload = data[start:start + length]
            if zlib.crc32(payload) != crc:
                break  # corrupt tail (interrupted overwrite)
            try:
                frames.append(pickle.loads(payload))
            except Exception:
                break
            offset = start + length
        if offset < end:
            with self._mutex:
                self._file.truncate(offset)
                self._file.flush()
                self._appended_lsn = offset
        return frames

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        with self._mutex:
            self._file.flush()
            return os.path.getsize(self.path)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.synchronous:
                os.fsync(self._file.fileno())
            self._file.close()


def wal_path_for(database_path: str) -> str:
    """The log path used for a database file (side file, same directory)."""
    return database_path + ".wal"
