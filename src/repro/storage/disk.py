"""Disk manager: page-granular persistence with I/O accounting.

The bdbms paper's quantitative claims (Section 7.2: "up to 30% reduction in
I/Os for the insertion operations", "order of magnitude reduction in
storage") are stated in page I/Os and bytes.  Every page read and write in
the reproduction therefore flows through a :class:`DiskManager`, which counts
them, so that benchmarks can report the same currency as the paper.

Two backends are provided: a file-backed manager (one file per database) and
an in-memory manager used by tests and benchmarks that want speed while still
counting I/O.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE, Page


@dataclass
class IoStatistics:
    """Counters of logical page I/O performed through a disk manager."""

    page_reads: int = 0
    page_writes: int = 0
    pages_allocated: int = 0

    def snapshot(self) -> "IoStatistics":
        return IoStatistics(self.page_reads, self.page_writes, self.pages_allocated)

    def diff(self, earlier: "IoStatistics") -> "IoStatistics":
        """Return the I/O performed since ``earlier``."""
        return IoStatistics(
            page_reads=self.page_reads - earlier.page_reads,
            page_writes=self.page_writes - earlier.page_writes,
            pages_allocated=self.pages_allocated - earlier.pages_allocated,
        )

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.pages_allocated = 0

    @property
    def total_io(self) -> int:
        return self.page_reads + self.page_writes


class DiskManager:
    """Abstract page store.  Subclasses provide the actual byte persistence."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self.stats = IoStatistics()
        self._next_page_id = 0

    # -- allocation -----------------------------------------------------
    def allocate_page(self) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        self.stats.pages_allocated += 1
        self._store(page_id, Page(page_id, self.page_size).to_bytes())
        return page_id

    @property
    def num_pages(self) -> int:
        return self._next_page_id

    # -- page I/O --------------------------------------------------------
    def read_page(self, page_id: int) -> Page:
        self.stats.page_reads += 1
        data = self._load(page_id)
        return Page.from_bytes(data, self.page_size)

    def write_page(self, page: Page) -> None:
        self.stats.page_writes += 1
        self._store(page.page_id, page.to_bytes())

    # -- backend hooks ----------------------------------------------------
    def _load(self, page_id: int) -> bytes:
        raise NotImplementedError

    def _store(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (no-op for the in-memory backend)."""

    def sync(self) -> None:
        """Force written pages to stable storage (no-op unless file-backed)."""

    def reset(self) -> None:
        """Drop every page (recovery rebuilds the store from the WAL)."""
        self._next_page_id = 0

    def storage_bytes(self) -> int:
        """Total bytes occupied by allocated pages."""
        return self.num_pages * self.page_size


class InMemoryDiskManager(DiskManager):
    """Page store backed by a dictionary; used by tests and benchmarks."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        super().__init__(page_size)
        self._pages: Dict[int, bytes] = {}

    def _load(self, page_id: int) -> bytes:
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} has never been allocated")
        return self._pages[page_id]

    def _store(self, page_id: int, data: bytes) -> None:
        self._pages[page_id] = data

    def reset(self) -> None:
        super().reset()
        self._pages.clear()


class FileDiskManager(DiskManager):
    """Page store backed by a single database file.

    ``synchronous`` (set from ``EngineConfig.synchronous`` by ``Database``)
    controls whether :meth:`sync` and :meth:`close` call ``os.fsync``: a
    flushed-but-unfsynced file can lose acknowledged writes on power loss,
    which is exactly the bug the WAL + sync points fix.  ``fail_mid_page_write``
    is a one-shot crash point for recovery tests: the next page write stores
    only half the page and raises :class:`~repro.storage.wal.InjectedCrash`,
    simulating a torn in-place write that recovery must survive (it does,
    by rebuilding the page store from the WAL instead of trusting it).
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 tolerate_torn: bool = False):
        super().__init__(page_size)
        self.path = path
        self.synchronous = True
        self.fail_mid_page_write = False
        self.fsync_count = 0
        directory = os.path.dirname(os.path.abspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Open for read/write, creating the file when missing.
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        size = os.path.getsize(path)
        if size % page_size != 0:
            # A torn in-place page write (crash mid-store) leaves a partial
            # trailing page.  With a WAL the file is about to be rebuilt
            # anyway, so the caller opts into tolerating (and dropping) the
            # tail; without one this is unrecoverable corruption.
            if not tolerate_torn:
                raise StorageError(
                    f"database file {path} has size {size}, not a multiple of "
                    f"the {page_size}-byte page size"
                )
        self._next_page_id = size // page_size

    def _load(self, page_id: int) -> bytes:
        if page_id >= self._next_page_id:
            raise StorageError(f"page {page_id} has never been allocated")
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"short read for page {page_id}")
        return data

    def _store(self, page_id: int, data: bytes) -> None:
        self._file.seek(page_id * self.page_size)
        if self.fail_mid_page_write:
            from repro.storage.wal import InjectedCrash
            self.fail_mid_page_write = False
            self._file.write(data[:len(data) // 2])
            self._file.flush()
            raise InjectedCrash("mid_page_write")
        self._file.write(data)

    def sync(self) -> None:
        """Flush and (when ``synchronous``) fsync the data file."""
        if self._file.closed:
            return
        self._file.flush()
        if self.synchronous:
            os.fsync(self._file.fileno())
            self.fsync_count += 1

    def reset(self) -> None:
        """Truncate the data file: recovery re-materializes it from the WAL."""
        super().reset()
        self._file.truncate(0)
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self.synchronous:
                os.fsync(self._file.fileno())
                self.fsync_count += 1
            self._file.close()

    def storage_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)


def open_disk_manager(path: Optional[str], page_size: int = DEFAULT_PAGE_SIZE,
                      tolerate_torn: bool = False) -> DiskManager:
    """Open a file-backed manager when ``path`` is given, in-memory otherwise."""
    if path is None or path == ":memory:":
        return InMemoryDiskManager(page_size)
    return FileDiskManager(path, page_size, tolerate_torn=tolerate_torn)
