"""Heap files: unordered collections of rows stored in slotted pages.

A heap file owns a list of page ids and supports insert, point read/update/
delete by :class:`RecordId`, and full scans.  Rows are serialized with the
tagged binary codec from :mod:`repro.types.values`; each stored row is
prefixed with a monotonically increasing *tuple id* so that higher layers
(annotations, dependency bitmaps, the approval log) can address tuples by a
stable logical identifier that survives page reorganisation.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import PageFullError, StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import RecordId
from repro.types.values import deserialize_records, deserialize_row, serialize_row


class HeapFile:
    """An unordered file of rows, one per user relation."""

    def __init__(self, pool: BufferPool, page_ids: Optional[List[int]] = None,
                 next_tuple_id: int = 0):
        self.pool = pool
        self.page_ids: List[int] = list(page_ids or [])
        self.next_tuple_id = next_tuple_id

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any], tuple_id: Optional[int] = None) -> Tuple[int, RecordId]:
        """Insert a row; returns ``(tuple_id, record_id)``."""
        if tuple_id is None:
            tuple_id = self.next_tuple_id
            self.next_tuple_id += 1
        else:
            self.next_tuple_id = max(self.next_tuple_id, tuple_id + 1)
        record = serialize_row((tuple_id,) + tuple(values))
        record_id = self._place_record(record)
        return tuple_id, record_id

    def _place_record(self, record: bytes) -> RecordId:
        # Try the last page first; heap files grow at the tail.
        if self.page_ids:
            page = self.pool.fetch_page(self.page_ids[-1])
            try:
                slot = page.insert(record)
                self.pool.mark_dirty(page)
                return RecordId(page.page_id, slot)
            except PageFullError:
                pass
        page = self.pool.new_page()
        self.page_ids.append(page.page_id)
        slot = page.insert(record)
        self.pool.mark_dirty(page)
        return RecordId(page.page_id, slot)

    def update(self, record_id: RecordId, values: Sequence[Any], tuple_id: int) -> RecordId:
        """Update the row at ``record_id``; may move it to another page."""
        record = serialize_row((tuple_id,) + tuple(values))
        page = self.pool.fetch_page(record_id.page_id)
        if page.update(record_id.slot, record):
            self.pool.mark_dirty(page)
            return record_id
        # The record no longer fits: delete and re-insert elsewhere.
        page.delete(record_id.slot)
        self.pool.mark_dirty(page)
        return self._place_record(record)

    def delete(self, record_id: RecordId) -> None:
        page = self.pool.fetch_page(record_id.page_id)
        page.delete(record_id.slot)
        self.pool.mark_dirty(page)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, record_id: RecordId) -> Tuple[int, Tuple[Any, ...]]:
        """Return ``(tuple_id, values)`` for the row at ``record_id``."""
        page = self.pool.fetch_page(record_id.page_id)
        stored = deserialize_row(page.read(record_id.slot))
        if not stored:
            raise StorageError("corrupt record: missing tuple id")
        return int(stored[0]), tuple(stored[1:])

    def scan(self) -> Iterator[Tuple[RecordId, int, Tuple[Any, ...]]]:
        """Yield ``(record_id, tuple_id, values)`` for every live row."""
        for page_id in self.page_ids:
            page = self.pool.fetch_page(page_id)
            for slot, record in page.records():
                stored = deserialize_row(record)
                yield RecordId(page_id, slot), int(stored[0]), tuple(stored[1:])

    def scan_page(self, page_id: int) -> List[Tuple[int, int, Tuple[Any, ...]]]:
        """Decode every live row of one page: ``(slot, tuple_id, values)``.

        This is the batched read path: one buffer-pool fetch and one
        vectorized decode call per page instead of one of each per row.
        """
        page = self.pool.fetch_page(page_id)
        pairs = list(page.records())
        decoded = deserialize_records([record for _, record in pairs])
        return [(slot, tuple_id, values)
                for (slot, _), (tuple_id, values) in zip(pairs, decoded)]

    def scan_page_rows(self, page_id: int,
                       with_tuple_ids: bool = True) -> List[Any]:
        """Decode one page's live rows in slot order, without slot bookkeeping.

        Returns ``(tuple_id, values)`` pairs, or bare value tuples when
        ``with_tuple_ids`` is False — the no-overhead path for scans that
        neither attach annotations nor address cells.
        """
        page = self.pool.fetch_page(page_id)
        return deserialize_records(page.live_records(), with_tuple_ids)

    def count(self) -> int:
        return sum(1 for _ in self.scan())

    def num_pages(self) -> int:
        return len(self.page_ids)
