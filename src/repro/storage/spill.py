"""Disk spilling for memory-bounded pipeline breakers.

Blocking operators (hash-join build, GROUP BY, DISTINCT, sort) must see all
of their input before emitting output.  Without a budget they materialize it
in memory, which caps query size at available RAM.  This module gives them a
place to put the overflow: :class:`SpillManager` hands out temp-file-backed
:class:`SpillFile` partitions and tracks :class:`SpillStats` for
observability (``engine.last_spill``), and the operators implement
Grace-style partitioning / external sorting on top.

The on-disk record format reuses the storage layer's row serialization
(:func:`repro.types.values.serialize_row`): each record is

``<u32 payload length> <payload> <u32 annotation length> [annotations]``

where the payload is ``serialize_row((0,) + values)`` — the same
tuple-id-prefixed layout the heap file writes (with a dummy id), so reading
a run of unannotated records back goes through the *vectorized*
:func:`repro.types.values.deserialize_records` shape decoder instead of a
per-value tag-dispatch loop.  Annotations are interned per query: the
annotation section stores small integer references into the manager's
registry, never the annotation objects themselves (spill files are
process-local and live only for the duration of one query).
"""

from __future__ import annotations

import struct
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import StorageError
from repro.types.values import deserialize_records, deserialize_row, serialize_row

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")

#: Fan-out used when a spilling operator partitions its input and the cost
#: model supplied no estimate.
DEFAULT_SPILL_PARTITIONS = 8
#: Upper bound on the partition fan-out (file handles are not free).
MAX_SPILL_PARTITIONS = 32
#: Maximum recursive re-partitioning depth for skewed inputs.  Beyond this a
#: partition is processed in memory even if it exceeds the budget — a single
#: over-represented key cannot be split by rehashing anyway.
MAX_SPILL_DEPTH = 4
#: Rows decoded per batch when reading a spill file back.  Deliberately
#: smaller than the executor's batch size: a k-way merge holds one pending
#: decode buffer per run/partition *simultaneously*, so this bounds the
#: merge phase's memory at no measurable latency cost.
_READ_BATCH_ROWS = 256


@dataclass
class SpillStats:
    """Spill activity of one query (exposed as ``engine.last_spill``).

    ``operators`` holds one event dict per spilling operator instance, e.g.
    ``{"operator": "hash_join", "partitions": 8, "build_rows": 40000, ...}``.
    The counters measure total spill-file *I/O*: every write to every spill
    file, including recursive re-partition passes and merge/dedup rewrites
    — so a row that takes two disk passes counts twice.  For the number of
    input rows an operator pushed out of memory, read its event (e.g.
    ``build_rows``/``probe_rows``/``spilled_rows``).

    All mutation goes through the internal lock: with
    ``EngineConfig.parallel_workers`` > 0, partition workers append spill
    rows and per-partition timings concurrently, and the stats object is
    shared by every spill manager of the query.
    """

    spill_files: int = 0
    spilled_rows: int = 0
    spilled_bytes: int = 0
    operators: List[Dict[str, Any]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @property
    def spilled(self) -> bool:
        return self.spill_files > 0

    def record(self, operator: str, **info: Any) -> Dict[str, Any]:
        """Append (and return) an operator event; callers may update it as
        execution proceeds, since the dict is shared by reference."""
        event = {"operator": operator, **info}
        with self._lock:
            self.operators.append(event)
        return event

    def note_file(self) -> None:
        with self._lock:
            self.spill_files += 1

    def note_io(self, rows: int, nbytes: int) -> None:
        with self._lock:
            self.spilled_rows += rows
            self.spilled_bytes += nbytes

    def note_event(self, event: Dict[str, Any], key: str,
                   delta: int = 1) -> None:
        """Atomically increment a counter inside a shared operator event."""
        with self._lock:
            event[key] = event.get(key, 0) + delta

    def note_partition(self, event: Dict[str, Any], **info: Any) -> None:
        """Append one per-partition timing/attribution record to an event.

        Workers call this concurrently; records therefore arrive in
        *completion* order — sort by ``partition`` for a stable view.
        """
        with self._lock:
            event.setdefault("partition_timings", []).append(dict(info))

    def events(self, operator: str) -> List[Dict[str, Any]]:
        return [e for e in self.operators if e["operator"] == operator]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "spill_files": self.spill_files,
            "spilled_rows": self.spilled_rows,
            "spilled_bytes": self.spilled_bytes,
            "operators": list(self.operators),
        }


def clamp_partitions(estimated_rows: float, budget_rows: int) -> int:
    """Grace-hash fan-out for an input estimate: ``ceil(rows / budget)``
    clamped to [2, :data:`MAX_SPILL_PARTITIONS`]."""
    if budget_rows <= 0:
        return DEFAULT_SPILL_PARTITIONS
    partitions = -(-int(estimated_rows) // budget_rows)  # ceil division
    return max(2, min(MAX_SPILL_PARTITIONS, partitions))


class SpillManager:
    """Per-query spill coordinator: budget, temp files, annotation registry.

    One manager serves every spilling operator of a query; its ``stats``
    object is the one the engine exposes after execution.  The annotation
    registry interns the :class:`~repro.annotations.model.Annotation`
    objects carried by spilled rows so the files store integer references —
    identity survives the round trip exactly (the same objects come back).
    """

    def __init__(self, budget_rows: int, stats: Optional[SpillStats] = None,
                 directory: Optional[str] = None, parallel: Optional[Any] = None):
        if budget_rows <= 0:
            raise StorageError(f"spill budget must be positive, got {budget_rows}")
        self.budget_rows = budget_rows
        self.directory = directory
        self.stats = stats if stats is not None else SpillStats()
        if parallel is None:
            # Imported lazily: the storage layer must not import the executor
            # package at module load (repro.executor.__init__ imports the
            # engine, which imports this module).
            from repro.executor.parallel import MaybeParallel
            parallel = MaybeParallel(0)
        #: Serial/parallel dispatch facade (``MaybeParallel``) the spilling
        #: operators fan partition work out through.  Workers share this
        #: manager, so interning and stats below are lock-protected.
        self.parallel = parallel
        self._annotations: List[Any] = []
        self._indices: Dict[Any, int] = {}
        self._intern_lock = threading.Lock()

    # -- annotation interning -------------------------------------------
    def intern_annotation(self, annotation: Any) -> int:
        index = self._indices.get(annotation)
        if index is None:
            with self._intern_lock:
                index = self._indices.get(annotation)
                if index is None:
                    # Append before publishing the index: a concurrent
                    # ``resolve_annotation`` may only ever see indices whose
                    # list slot already exists.
                    self._annotations.append(annotation)
                    index = len(self._annotations) - 1
                    self._indices[annotation] = index
        return index

    def resolve_annotation(self, index: int) -> Any:
        return self._annotations[index]

    # -- files -----------------------------------------------------------
    def new_file(self) -> "SpillFile":
        self.stats.note_file()
        return SpillFile(self)

    def partition_count(self, estimated_rows: Optional[float] = None) -> int:
        if estimated_rows is None:
            return DEFAULT_SPILL_PARTITIONS
        return clamp_partitions(estimated_rows, self.budget_rows)


class SpillFile:
    """One temp-file-backed run/partition of spilled rows.

    Write with :meth:`append`, then read back *once* with :meth:`entries`
    (``(values, annotations)`` pairs in write order).  The underlying file
    is an anonymous ``tempfile.TemporaryFile``: it is unlinked from the
    filesystem immediately, so an abandoned iterator can never leak a file
    past process exit.
    """

    __slots__ = ("manager", "rows_written", "bytes_written", "_file", "_closed")

    def __init__(self, manager: SpillManager):
        self.manager = manager
        self.rows_written = 0
        self.bytes_written = 0
        self._file = tempfile.TemporaryFile(prefix="repro-spill-",
                                            dir=manager.directory)
        self._closed = False

    def __len__(self) -> int:
        return self.rows_written

    # -- writing ---------------------------------------------------------
    def append(self, values: Tuple[Any, ...],
               annotations: Optional[Sequence[Set[Any]]] = None) -> None:
        payload = serialize_row((0,) + tuple(values))
        if annotations is not None and any(annotations):
            ann_payload = self._encode_annotations(annotations)
        else:
            ann_payload = b""
        record = b"".join((_U32.pack(len(payload)), payload,
                           _U32.pack(len(ann_payload)), ann_payload))
        self._file.write(record)
        self.rows_written += 1
        self.bytes_written += len(record)
        self.manager.stats.note_io(1, len(record))

    def _encode_annotations(self, annotations: Sequence[Set[Any]]) -> bytes:
        intern = self.manager.intern_annotation
        parts = [_U16.pack(len(annotations))]
        for column_set in annotations:
            parts.append(_U16.pack(len(column_set)))
            for annotation in column_set:
                parts.append(_U32.pack(intern(annotation)))
        return b"".join(parts)

    def _decode_annotations(self, data: bytes) -> List[Set[Any]]:
        resolve = self.manager.resolve_annotation
        (columns,) = _U16.unpack_from(data, 0)
        offset = 2
        vector: List[Set[Any]] = []
        for _ in range(columns):
            (count,) = _U16.unpack_from(data, offset)
            offset += 2
            column_set: Set[Any] = set()
            for _ in range(count):
                (index,) = _U32.unpack_from(data, offset)
                offset += 4
                column_set.add(resolve(index))
            vector.append(column_set)
        return vector

    # -- reading ---------------------------------------------------------
    def entries(self) -> Iterator[Tuple[Tuple[Any, ...], Optional[List[Set[Any]]]]]:
        """One-shot read-back: ``(values, annotation vector | None)`` pairs.

        Runs of unannotated records are decoded through the vectorized
        ``deserialize_records`` shape decoder; annotated records fall back
        to the per-record path.
        """
        handle = self._file
        handle.flush()
        handle.seek(0)
        pending: List[bytes] = []
        while True:
            header = handle.read(4)
            if len(header) < 4:
                break
            (payload_length,) = _U32.unpack(header)
            payload = handle.read(payload_length)
            (ann_length,) = _U32.unpack(handle.read(4))
            if ann_length == 0:
                pending.append(payload)
                if len(pending) >= _READ_BATCH_ROWS:
                    for values in deserialize_records(pending,
                                                      with_tuple_ids=False):
                        yield values, None
                    pending = []
                continue
            if pending:
                for values in deserialize_records(pending, with_tuple_ids=False):
                    yield values, None
                pending = []
            ann_payload = handle.read(ann_length)
            yield deserialize_row(payload)[1:], self._decode_annotations(ann_payload)
        if pending:
            for values in deserialize_records(pending, with_tuple_ids=False):
                yield values, None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()
