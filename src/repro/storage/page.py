"""Slotted pages: the unit of storage and of I/O accounting.

Each page holds a small header, a slot directory that grows from the front,
and record payloads that grow from the back — the classic slotted-page
layout.  Deleting a record tombstones its slot so that record identifiers
(page id, slot index) remain stable, which the annotation manager and the
dependency tracker rely on to address individual cells.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import PageFullError, StorageError

#: Default page size in bytes.  Small enough that multi-page behaviour shows
#: up in tests and benchmarks without needing huge datasets.
DEFAULT_PAGE_SIZE = 4096

_HEADER_FORMAT = "<IHH"  # page_id, slot_count, free_space_offset
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)
_SLOT_FORMAT = "<HH"  # record offset, record length
_SLOT_SIZE = struct.calcsize(_SLOT_FORMAT)
_SLOT_STRUCT = struct.Struct(_SLOT_FORMAT)
#: Offset sentinel marking a tombstoned (deleted) slot.
_TOMBSTONE_OFFSET = 0xFFFF


class Page:
    """A fixed-size slotted page holding variable-length records."""

    def __init__(self, page_id: int, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_id = page_id
        self.page_size = page_size
        self._slots: List[Tuple[int, int]] = []
        self._records: List[Optional[bytes]] = []
        #: Running total of live record payload bytes, maintained on every
        #: mutation: ``used_bytes`` runs per insert (the has-room check), so
        #: it must not rescan the page.
        self._payload_bytes = 0
        self.dirty = False

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        return len(self._slots)

    def used_bytes(self) -> int:
        return _HEADER_SIZE + len(self._slots) * _SLOT_SIZE + self._payload_bytes

    def free_bytes(self) -> int:
        return self.page_size - self.used_bytes()

    def has_room_for(self, record: bytes) -> bool:
        return self.free_bytes() >= len(record) + _SLOT_SIZE

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------
    def insert(self, record: bytes) -> int:
        """Insert ``record`` and return its slot index."""
        if len(record) + _SLOT_SIZE + _HEADER_SIZE > self.page_size:
            raise StorageError(
                f"record of {len(record)} bytes can never fit in a "
                f"{self.page_size}-byte page"
            )
        if not self.has_room_for(record):
            raise PageFullError(f"page {self.page_id} is full")
        slot = len(self._slots)
        self._slots.append((0, len(record)))
        self._records.append(bytes(record))
        self._payload_bytes += len(record)
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        record = self._record_at(slot)
        if record is None:
            raise StorageError(f"slot {slot} of page {self.page_id} is deleted")
        return record

    def update(self, slot: int, record: bytes) -> bool:
        """Update a record in place.

        Returns ``False`` when the new record does not fit in this page, in
        which case the caller (the heap file) moves the record elsewhere.
        """
        old = self._record_at(slot)
        if old is None:
            raise StorageError(f"slot {slot} of page {self.page_id} is deleted")
        growth = len(record) - len(old)
        if growth > 0 and self.free_bytes() < growth:
            return False
        self._records[slot] = bytes(record)
        self._slots[slot] = (0, len(record))
        self._payload_bytes += growth
        self.dirty = True
        return True

    def delete(self, slot: int) -> None:
        record = self._record_at(slot)
        if record is None:
            raise StorageError(f"slot {slot} of page {self.page_id} is already deleted")
        self._records[slot] = None
        self._slots[slot] = (_TOMBSTONE_OFFSET, 0)
        self._payload_bytes -= len(record)
        self.dirty = True

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < len(self._records) and self._records[slot] is not None

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(slot, record)`` for every live record."""
        for slot, record in enumerate(self._records):
            if record is not None:
                yield slot, record

    def live_records(self) -> List[bytes]:
        """Every live record payload in slot order (bulk read path)."""
        return [record for record in self._records if record is not None]

    def _record_at(self, slot: int) -> Optional[bytes]:
        if not 0 <= slot < len(self._records):
            raise StorageError(f"slot {slot} out of range for page {self.page_id}")
        return self._records[slot]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the page into exactly ``page_size`` bytes."""
        buffer = bytearray(self.page_size)
        offset = self.page_size
        slot_entries: List[Tuple[int, int]] = []
        for record in self._records:
            if record is None:
                slot_entries.append((_TOMBSTONE_OFFSET, 0))
                continue
            offset -= len(record)
            buffer[offset:offset + len(record)] = record
            slot_entries.append((offset, len(record)))
        struct.pack_into(_HEADER_FORMAT, buffer, 0, self.page_id, len(slot_entries), offset)
        cursor = _HEADER_SIZE
        for entry in slot_entries:
            struct.pack_into(_SLOT_FORMAT, buffer, cursor, *entry)
            cursor += _SLOT_SIZE
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> "Page":
        if len(data) != page_size:
            raise StorageError(
                f"page image is {len(data)} bytes, expected {page_size}"
            )
        page_id, slot_count, _free_offset = struct.unpack_from(_HEADER_FORMAT, data, 0)
        page = cls(page_id, page_size)
        # One C-level pass over the slot directory instead of a Python loop
        # with a struct call per slot (page parsing is on every buffer-pool
        # miss, which full scans of large tables hit per page).
        directory = data[_HEADER_SIZE:_HEADER_SIZE + slot_count * _SLOT_SIZE]
        page._slots = list(_SLOT_STRUCT.iter_unpack(directory))
        page._records = [
            None if rec_offset == _TOMBSTONE_OFFSET
            else data[rec_offset:rec_offset + rec_length]
            for rec_offset, rec_length in page._slots
        ]
        page._payload_bytes = sum(
            length for offset, length in page._slots
            if offset != _TOMBSTONE_OFFSET)
        page.dirty = False
        return page


class RecordId:
    """Stable address of a record: (page id, slot index)."""

    __slots__ = ("page_id", "slot")

    def __init__(self, page_id: int, slot: int):
        self.page_id = page_id
        self.slot = slot

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RecordId)
            and self.page_id == other.page_id
            and self.slot == other.slot
        )

    def __hash__(self) -> int:
        return hash((self.page_id, self.slot))

    def __repr__(self) -> str:
        return f"RecordId({self.page_id}, {self.slot})"

    def __lt__(self, other: "RecordId") -> bool:
        return (self.page_id, self.slot) < (other.page_id, other.slot)
