"""LRU buffer pool sitting between heap files / indexes and the disk manager.

The pool caches a bounded number of pages.  Reads that hit the cache do not
count as page I/O (the disk manager is not touched); misses read from disk
and may evict the least-recently-used page, writing it back if dirty.  This
is what lets the benchmarks report "I/O" numbers that respond to access
locality, the property the paper's compact annotation storage and SBC-tree
claims rest on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.disk import DiskManager
from repro.storage.page import Page

#: Default number of pages cached by a buffer pool.
DEFAULT_POOL_SIZE = 128


@dataclass
class BufferPoolStatistics:
    """Hit/miss counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """A simple LRU page cache with write-back of dirty pages."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferPoolStatistics()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        #: Depth of open no-steal scopes.  While positive (a transaction is
        #: in flight), eviction refuses to write dirty pages back to disk:
        #: the WAL is redo-only, so an uncommitted change must never reach
        #: the data file where a crash could expose it without a matching
        #: commit record.  Dirty victims are skipped (clean pages evict
        #: first); if *every* frame is dirty the pool overshoots its
        #: capacity rather than steal.
        self._no_steal_depth = 0

    # ------------------------------------------------------------------
    # No-steal discipline (transactions)
    # ------------------------------------------------------------------
    def begin_no_steal(self) -> None:
        """Pin dirty pages in memory until :meth:`end_no_steal`."""
        self._no_steal_depth += 1

    def end_no_steal(self) -> None:
        if self._no_steal_depth > 0:
            self._no_steal_depth -= 1
        if self._no_steal_depth == 0:
            self._shrink_to_capacity()

    def _shrink_to_capacity(self) -> None:
        """Evict the overshoot a no-steal scope may have left behind.

        Runs once steal is allowed again, so dirty victims are written back
        normally — without this, a small pool filled with dirty pages would
        keep growing (nothing else ever evicts outside ``_admit``).
        """
        while len(self._frames) > self.capacity:
            victim_id = self._pick_victim()
            if victim_id is None:  # pragma: no cover - depth is 0 here
                break
            victim = self._frames.pop(victim_id)
            self.stats.evictions += 1
            if victim.dirty:
                self.disk.write_page(victim)
                victim.dirty = False

    @property
    def no_steal_active(self) -> bool:
        return self._no_steal_depth > 0

    # ------------------------------------------------------------------
    def new_page(self) -> Page:
        """Allocate a fresh page on disk and pin it into the pool."""
        page_id = self.disk.allocate_page()
        page = Page(page_id, self.disk.page_size)
        page.dirty = True
        self._admit(page)
        return page

    def fetch_page(self, page_id: int) -> Page:
        """Return the page with ``page_id``, reading it from disk on a miss."""
        if page_id in self._frames:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.stats.misses += 1
        page = self.disk.read_page(page_id)
        self._admit(page)
        return page

    def mark_dirty(self, page: Page) -> None:
        page.dirty = True

    def flush_page(self, page_id: int) -> None:
        page = self._frames.get(page_id)
        if page is not None and page.dirty:
            self.disk.write_page(page)
            page.dirty = False

    def flush_all(self) -> None:
        for page_id in list(self._frames):
            self.flush_page(page_id)

    def clear(self) -> None:
        """Flush and drop every cached page (used to force cold-cache runs)."""
        self.flush_all()
        self._frames.clear()

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.capacity:
            victim_id = self._pick_victim()
            if victim_id is None:
                break  # no-steal: every frame is dirty, overshoot capacity
            victim = self._frames.pop(victim_id)
            self.stats.evictions += 1
            if victim.dirty:
                self.disk.write_page(victim)
                victim.dirty = False

    def _pick_victim(self) -> "int | None":
        """LRU victim; under no-steal, the least-recently-used *clean* page."""
        if self._no_steal_depth == 0:
            return next(iter(self._frames))
        for page_id, page in self._frames.items():
            if not page.dirty:
                return page_id
        return None
