"""LRU buffer pool sitting between heap files / indexes and the disk manager.

The pool caches a bounded number of pages.  Reads that hit the cache do not
count as page I/O (the disk manager is not touched); misses read from disk
and may evict the least-recently-used page, writing it back if dirty.  This
is what lets the benchmarks report "I/O" numbers that respond to access
locality, the property the paper's compact annotation storage and SBC-tree
claims rest on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.storage.disk import DiskManager
from repro.storage.page import Page

#: Default number of pages cached by a buffer pool.
DEFAULT_POOL_SIZE = 128


@dataclass
class BufferPoolStatistics:
    """Hit/miss counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class DecodedCacheStatistics:
    """Hit/miss counters for the decoded-page cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations}


class DecodedCacheView:
    """Per-query window over a :class:`DecodedCacheStatistics`.

    The cache (and its counters) live as long as the buffer pool; a query
    wants "what happened during *me*".  The view snapshots the counters at
    construction and reports deltas, staying live while a streaming result
    is still being drained.
    """

    __slots__ = ("_stats", "_base")

    def __init__(self, stats: DecodedCacheStatistics):
        self._stats = stats
        self._base = (stats.hits, stats.misses, stats.evictions,
                      stats.invalidations)

    @property
    def hits(self) -> int:
        return self._stats.hits - self._base[0]

    @property
    def misses(self) -> int:
        return self._stats.misses - self._base[1]

    @property
    def evictions(self) -> int:
        return self._stats.evictions - self._base[2]

    @property
    def invalidations(self) -> int:
        return self._stats.invalidations - self._base[3]

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations}


class DecodedPageCache:
    """LRU cache of *decoded* page record lists, keyed by
    ``(table, page_id, schema_version, with_tuple_ids)``.

    Decoding a page (``deserialize_records``) dominates warm scans — the
    raw bytes may sit in the buffer pool, yet every scan pays the per-value
    tag dispatch again.  This cache keeps the decoded tuple lists so a
    repeated scan skips decoding entirely.  Consistency comes from three
    invalidation paths, all driven by the buffer pool that owns the cache:

    * **page dirty** — every heap mutation funnels through
      ``BufferPool.mark_dirty``, which drops all entries for that page;
    * **page evict** — an evicted frame drops its decoded entries too, so
      the decoded cache never outlives the raw page it mirrors;
    * **schema version** — the catalog's ``schema_version`` is part of the
      key, so DDL (and ANALYZE) strands old entries, which age out by LRU.

    ``capacity`` counts *pages* (entries); 0 disables the cache.  Cached
    lists are shared across queries and must never be mutated by readers —
    scan paths only slice them.
    """

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self.stats = DecodedCacheStatistics()
        self._entries: "OrderedDict[Tuple[Any, ...], List[Any]]" = OrderedDict()
        #: page_id -> keys currently cached for that page (all versions).
        self._by_page: Dict[int, Set[Tuple[Any, ...]]] = {}
        #: Concurrent readers (the server's shared-read scans) hit get/put
        #: from many threads, and LRU maintenance plus the ``_by_page``
        #: index are multi-step mutations.  Re-entrant: ``put`` shrinks
        #: while already holding it.
        self._lock = threading.RLock()

    def set_capacity(self, capacity: int) -> None:
        with self._lock:
            if capacity != self.capacity:
                self.capacity = capacity
                self._shrink()

    def get(self, table: str, page_id: int, schema_version: int,
            with_tuple_ids: bool) -> Optional[List[Any]]:
        if self.capacity <= 0:
            return None
        key = (table, page_id, schema_version, with_tuple_ids)
        with self._lock:
            rows = self._entries.get(key)
            if rows is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return rows

    def put(self, table: str, page_id: int, schema_version: int,
            with_tuple_ids: bool, rows: List[Any]) -> None:
        if self.capacity <= 0:
            return
        key = (table, page_id, schema_version, with_tuple_ids)
        with self._lock:
            self._entries[key] = rows
            self._entries.move_to_end(key)
            self._by_page.setdefault(page_id, set()).add(key)
            self._shrink()

    def _shrink(self) -> None:
        while len(self._entries) > max(self.capacity, 0):
            key, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            keys = self._by_page.get(key[1])
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_page[key[1]]

    def invalidate_page(self, page_id: int) -> None:
        with self._lock:
            keys = self._by_page.pop(page_id, None)
            if not keys:
                return
            for key in keys:
                if self._entries.pop(key, None) is not None:
                    self.stats.invalidations += 1

    def invalidate_table(self, table: str) -> None:
        with self._lock:
            doomed = [key for key in self._entries if key[0] == table]
            for key in doomed:
                del self._entries[key]
                self.stats.invalidations += 1
                keys = self._by_page.get(key[1])
                if keys is not None:
                    keys.discard(key)
                    if not keys:
                        del self._by_page[key[1]]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_page.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class BufferPool:
    """A simple LRU page cache with write-back of dirty pages."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_SIZE):
        if capacity < 1:
            raise ValueError("buffer pool capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferPoolStatistics()
        #: Decoded-record cache tied to this pool's lifecycle: page dirty
        #: and evict both invalidate, so decoded entries never outlive the
        #: raw page bytes they were produced from.  Disabled (capacity 0)
        #: until the engine syncs ``EngineConfig.decoded_page_cache_pages``.
        self.decoded = DecodedPageCache()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        #: Guards frames, stats, and the no-steal depth: fetch is a
        #: check-then-read-then-admit sequence and eviction walks the LRU
        #: order, neither of which survives interleaving with concurrent
        #: readers.  Re-entrant (``new_page`` admits while holding it);
        #: always taken *before* the decoded cache's own lock, never after.
        self._lock = threading.RLock()
        #: Depth of open no-steal scopes.  While positive (a transaction is
        #: in flight), eviction refuses to write dirty pages back to disk:
        #: the WAL is redo-only, so an uncommitted change must never reach
        #: the data file where a crash could expose it without a matching
        #: commit record.  Dirty victims are skipped (clean pages evict
        #: first); if *every* frame is dirty the pool overshoots its
        #: capacity rather than steal.
        self._no_steal_depth = 0

    # ------------------------------------------------------------------
    # No-steal discipline (transactions)
    # ------------------------------------------------------------------
    def begin_no_steal(self) -> None:
        """Pin dirty pages in memory until :meth:`end_no_steal`."""
        with self._lock:
            self._no_steal_depth += 1

    def end_no_steal(self) -> None:
        with self._lock:
            if self._no_steal_depth > 0:
                self._no_steal_depth -= 1
            if self._no_steal_depth == 0:
                self._shrink_to_capacity()

    def _shrink_to_capacity(self) -> None:
        """Evict the overshoot a no-steal scope may have left behind.

        Runs once steal is allowed again, so dirty victims are written back
        normally — without this, a small pool filled with dirty pages would
        keep growing (nothing else ever evicts outside ``_admit``).
        """
        with self._lock:
            while len(self._frames) > self.capacity:
                victim_id = self._pick_victim()
                if victim_id is None:  # pragma: no cover - depth is 0 here
                    break
                victim = self._frames.pop(victim_id)
                self.stats.evictions += 1
                self.decoded.invalidate_page(victim_id)
                if victim.dirty:
                    self.disk.write_page(victim)
                    victim.dirty = False

    @property
    def no_steal_active(self) -> bool:
        return self._no_steal_depth > 0

    # ------------------------------------------------------------------
    def new_page(self) -> Page:
        """Allocate a fresh page on disk and pin it into the pool."""
        with self._lock:
            page_id = self.disk.allocate_page()
            page = Page(page_id, self.disk.page_size)
            page.dirty = True
            self._admit(page)
            return page

    def fetch_page(self, page_id: int) -> Page:
        """Return the page with ``page_id``, reading it from disk on a miss."""
        with self._lock:
            if page_id in self._frames:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return self._frames[page_id]
            self.stats.misses += 1
            page = self.disk.read_page(page_id)
            self._admit(page)
            return page

    def mark_dirty(self, page: Page) -> None:
        with self._lock:
            page.dirty = True
            self.decoded.invalidate_page(page.page_id)

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            page = self._frames.get(page_id)
            if page is not None and page.dirty:
                self.disk.write_page(page)
                page.dirty = False

    def flush_all(self) -> None:
        with self._lock:
            for page_id in list(self._frames):
                self.flush_page(page_id)

    def clear(self) -> None:
        """Flush and drop every cached page (used to force cold-cache runs)."""
        with self._lock:
            self.flush_all()
            self._frames.clear()
            self.decoded.clear()

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        with self._lock:
            self._frames[page.page_id] = page
            self._frames.move_to_end(page.page_id)
            while len(self._frames) > self.capacity:
                victim_id = self._pick_victim()
                if victim_id is None:
                    break  # no-steal: every frame is dirty, overshoot capacity
                victim = self._frames.pop(victim_id)
                self.stats.evictions += 1
                self.decoded.invalidate_page(victim_id)
                if victim.dirty:
                    self.disk.write_page(victim)
                    victim.dirty = False

    def _pick_victim(self) -> "int | None":
        """LRU victim; under no-steal, the least-recently-used *clean* page."""
        if self._no_steal_depth == 0:
            return next(iter(self._frames))
        for page_id, page in self._frames.items():
            if not page.dirty:
                return page_id
        return None
