"""Storage engine substrate: pages, disk managers, buffer pool, heap files."""

from repro.storage.buffer_pool import BufferPool, BufferPoolStatistics, DEFAULT_POOL_SIZE
from repro.storage.disk import (
    DiskManager,
    FileDiskManager,
    InMemoryDiskManager,
    IoStatistics,
    open_disk_manager,
)
from repro.storage.heap_file import HeapFile
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, RecordId
from repro.storage.spill import SpillFile, SpillManager, SpillStats

__all__ = [
    "BufferPool",
    "BufferPoolStatistics",
    "DEFAULT_POOL_SIZE",
    "DiskManager",
    "FileDiskManager",
    "InMemoryDiskManager",
    "IoStatistics",
    "open_disk_manager",
    "HeapFile",
    "DEFAULT_PAGE_SIZE",
    "Page",
    "RecordId",
    "SpillFile",
    "SpillManager",
    "SpillStats",
]
