"""SP-GiST: extensible space-partitioning index framework and its modules."""

from repro.index.spgist.framework import (
    BoxQuery,
    EqualityQuery,
    KnnQuery,
    PrefixQuery,
    Query,
    RegexQuery,
    SpGistIndex,
    SpGistModule,
    SubstringQuery,
)
from repro.index.spgist.modules import KdTreeModule, QuadtreeModule, TrieModule

__all__ = [
    "BoxQuery",
    "EqualityQuery",
    "KnnQuery",
    "PrefixQuery",
    "Query",
    "RegexQuery",
    "SpGistIndex",
    "SpGistModule",
    "SubstringQuery",
    "KdTreeModule",
    "QuadtreeModule",
    "TrieModule",
]
