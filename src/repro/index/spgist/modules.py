"""SP-GiST module instantiations: trie, kd-tree, and point quadtree.

These are the index structures the paper reports instantiating through
SP-GiST (Section 7.1): "variants of the trie, the kd-tree, the point
quadtree, and the PMR quadtree", supporting "k-nearest-neighbor search,
regular expression match search, and substring searching".

* :class:`TrieModule` — string keys partitioned by the character at the
  node's level; supports equality, prefix, regex, and substring queries.
* :class:`KdTreeModule` — k-dimensional numeric points split on one dimension
  per level at the median; supports equality, box range, and (via the
  framework) k-NN queries.
* :class:`QuadtreeModule` — 2-D points partitioned into four quadrants around
  a centroid; same query support as the kd-tree.
"""

from __future__ import annotations

import statistics
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.core.errors import IndexError_
from repro.index.spgist.framework import (
    BoxQuery,
    EqualityQuery,
    KnnQuery,
    PrefixQuery,
    Query,
    RegexQuery,
    SpGistModule,
    SubstringQuery,
)

#: Label used by the trie for keys exhausted at the current level.
TRIE_END = "\0"


class TrieModule(SpGistModule):
    """Disk-based trie over string keys (gene ids, names, sequences)."""

    name = "trie"

    def choose(self, key: str, level: int, state: Any) -> Hashable:
        if level < len(key):
            return key[level]
        return TRIE_END

    def picksplit(self, keys: Sequence[str], level: int) -> Any:
        # The trie needs no per-node state: the discriminating character is
        # determined by the level alone.
        return None

    def consistent(self, state: Any, label: Hashable, level: int, query: Query) -> bool:
        if isinstance(query, EqualityQuery):
            key = str(query.key)
            expected = key[level] if level < len(key) else TRIE_END
            return label == expected
        if isinstance(query, PrefixQuery):
            prefix = query.prefix
            if level < len(prefix):
                return label == prefix[level]
            return True
        if isinstance(query, RegexQuery):
            literal = query.literal_prefix()
            if level < len(literal):
                return label == literal[level]
            return True
        if isinstance(query, SubstringQuery):
            # A substring can start anywhere: no pruning possible at inner nodes.
            return True
        return True

    def leaf_consistent(self, key: str, query: Query) -> bool:
        if isinstance(query, EqualityQuery):
            return key == query.key
        if isinstance(query, PrefixQuery):
            return key.startswith(query.prefix)
        if isinstance(query, RegexQuery):
            return query.compiled().fullmatch(key) is not None
        if isinstance(query, SubstringQuery):
            return query.needle in key
        return False

    def supports(self, query: Query) -> bool:
        return isinstance(query, (EqualityQuery, PrefixQuery, RegexQuery,
                                  SubstringQuery))


class KdTreeModule(SpGistModule):
    """kd-tree over k-dimensional numeric points (e.g. protein 3-D structure)."""

    name = "kdtree"

    def __init__(self, dimensions: int = 2):
        if dimensions < 1:
            raise IndexError_("kd-tree needs at least one dimension")
        self.dimensions = dimensions

    def _dimension(self, level: int) -> int:
        return level % self.dimensions

    def choose(self, key: Sequence[float], level: int, state: Any) -> Hashable:
        split_value = state
        return "L" if key[self._dimension(level)] < split_value else "R"

    def picksplit(self, keys: Sequence[Sequence[float]], level: int) -> Any:
        dimension = self._dimension(level)
        return statistics.median(key[dimension] for key in keys)

    def consistent(self, state: Any, label: Hashable, level: int, query: Query) -> bool:
        dimension = self._dimension(level)
        split_value = state
        if isinstance(query, EqualityQuery):
            side = "L" if query.key[dimension] < split_value else "R"
            return label == side
        if isinstance(query, BoxQuery):
            if label == "L":
                return query.low[dimension] < split_value
            return query.high[dimension] >= split_value
        return True

    def leaf_consistent(self, key: Sequence[float], query: Query) -> bool:
        if isinstance(query, EqualityQuery):
            return tuple(key) == tuple(query.key)
        if isinstance(query, BoxQuery):
            return query.contains(key)
        return False

    def supports(self, query: Query) -> bool:
        return isinstance(query, (EqualityQuery, BoxQuery, KnnQuery))


class QuadtreeModule(SpGistModule):
    """Point quadtree over 2-D points."""

    name = "quadtree"

    def choose(self, key: Sequence[float], level: int, state: Any) -> Hashable:
        center_x, center_y = state
        east = key[0] >= center_x
        north = key[1] >= center_y
        return (east, north)

    def picksplit(self, keys: Sequence[Sequence[float]], level: int) -> Any:
        xs = [key[0] for key in keys]
        ys = [key[1] for key in keys]
        return (statistics.median(xs), statistics.median(ys))

    def consistent(self, state: Any, label: Hashable, level: int, query: Query) -> bool:
        center_x, center_y = state
        east, north = label
        if isinstance(query, EqualityQuery):
            return label == ((query.key[0] >= center_x), (query.key[1] >= center_y))
        if isinstance(query, BoxQuery):
            if east and query.high[0] < center_x:
                return False
            if not east and query.low[0] >= center_x:
                return False
            if north and query.high[1] < center_y:
                return False
            if not north and query.low[1] >= center_y:
                return False
            return True
        return True

    def leaf_consistent(self, key: Sequence[float], query: Query) -> bool:
        if isinstance(query, EqualityQuery):
            return tuple(key) == tuple(query.key)
        if isinstance(query, BoxQuery):
            return query.contains(key)
        return False

    def supports(self, query: Query) -> bool:
        return isinstance(query, (EqualityQuery, BoxQuery, KnnQuery))
