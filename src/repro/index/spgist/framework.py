"""SP-GiST: an extensible framework for space-partitioning trees.

The paper (Section 7.1, citing [3, 4, 16, 22]) integrates SP-GiST so that
disk-based versions of space-partitioning trees — tries, kd-trees, point
quadtrees — can be instantiated "through pluggable modules and without
modifying the database engine".  This module reproduces that contract:

* a :class:`SpGistModule` supplies the three extension hooks
  (``choose``: route a key to a partition, ``picksplit``: partition an
  overflowing leaf, ``consistent``: decide whether a partition can contain
  query matches) plus a leaf-level predicate;
* :class:`SpGistIndex` is the module-independent tree machinery: node
  management, insertion, generic search, and k-nearest-neighbour search, with
  logical node I/O accounting.

Query objects (:class:`EqualityQuery`, :class:`PrefixQuery`,
:class:`RegexQuery`, :class:`BoxQuery`, :class:`KnnQuery`) cover the advanced
operations the paper lists: exact match, prefix and regular-expression /
substring matching, multidimensional range search, and k-NN.
"""

from __future__ import annotations

import heapq
import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.errors import IndexError_
from repro.index.btree import IndexStatistics

K = TypeVar("K")
V = TypeVar("V")

#: Default number of entries a leaf holds before picksplit is invoked.
DEFAULT_LEAF_CAPACITY = 8


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
class Query:
    """Base class of the search predicates understood by the framework."""


@dataclass(frozen=True)
class EqualityQuery(Query):
    key: Any


@dataclass(frozen=True)
class PrefixQuery(Query):
    prefix: str


@dataclass(frozen=True)
class RegexQuery(Query):
    """Regular-expression match over string keys (full match)."""

    pattern: str

    def compiled(self) -> "re.Pattern[str]":
        return re.compile(self.pattern)

    def literal_prefix(self) -> str:
        """The longest literal prefix of the pattern (used for pruning)."""
        prefix = []
        for ch in self.pattern:
            if ch.isalnum() or ch in "_- ":
                prefix.append(ch)
            else:
                break
        return "".join(prefix)


@dataclass(frozen=True)
class SubstringQuery(Query):
    """Substring containment over string keys."""

    needle: str


@dataclass(frozen=True)
class BoxQuery(Query):
    """Axis-aligned box over point keys (inclusive bounds)."""

    low: Tuple[float, ...]
    high: Tuple[float, ...]

    def contains(self, point: Sequence[float]) -> bool:
        return all(l <= p <= h for l, p, h in zip(self.low, point, self.high))


@dataclass(frozen=True)
class KnnQuery(Query):
    point: Tuple[float, ...]
    k: int


# ---------------------------------------------------------------------------
# Module contract
# ---------------------------------------------------------------------------
class SpGistModule(Generic[K]):
    """The pluggable part of SP-GiST: how keys partition space."""

    #: human-readable name used in benchmark output
    name = "abstract"

    def choose(self, key: K, level: int, state: Any) -> Hashable:
        """Return the partition label the key belongs to at an inner node."""
        raise NotImplementedError

    def picksplit(self, keys: Sequence[K], level: int) -> Any:
        """Compute the inner-node state partitioning ``keys`` at ``level``."""
        raise NotImplementedError

    def consistent(self, state: Any, label: Hashable, level: int,
                   query: Query) -> bool:
        """May the partition ``label`` of a node with ``state`` contain matches?"""
        raise NotImplementedError

    def leaf_consistent(self, key: K, query: Query) -> bool:
        """Does an individual key satisfy the query?"""
        raise NotImplementedError

    def supports(self, query: Query) -> bool:
        """Whether this module can evaluate the query type at all."""
        return True


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------
class _LeafNode:
    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[Any, Any]] = []


class _InnerNode:
    __slots__ = ("state", "children", "level")

    def __init__(self, state: Any, level: int):
        self.state = state
        self.level = level
        self.children: Dict[Hashable, Any] = {}


# ---------------------------------------------------------------------------
# The framework
# ---------------------------------------------------------------------------
class SpGistIndex(Generic[K, V]):
    """Module-independent space-partitioning tree machinery."""

    def __init__(self, module: SpGistModule, leaf_capacity: int = DEFAULT_LEAF_CAPACITY):
        if leaf_capacity < 2:
            raise IndexError_("leaf capacity must be at least 2")
        self.module = module
        self.leaf_capacity = leaf_capacity
        self.stats = IndexStatistics()
        self._root: Any = self._new_leaf()
        self._size = 0
        #: per-node bounding boxes for numeric point keys (used by k-NN);
        #: keyed by id(node).
        self._bounds: Dict[int, Tuple[List[float], List[float]]] = {}

    # ------------------------------------------------------------------
    def _new_leaf(self) -> _LeafNode:
        self.stats.nodes_allocated += 1
        return _LeafNode()

    def _new_inner(self, state: Any, level: int) -> _InnerNode:
        self.stats.nodes_allocated += 1
        return _InnerNode(state, level)

    def __len__(self) -> int:
        return self._size

    @property
    def num_nodes(self) -> int:
        return self.stats.nodes_allocated

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        self._root = self._insert(self._root, key, value, level=0)
        self._size += 1

    def _update_bounds(self, node: Any, key: Any) -> None:
        if not isinstance(key, tuple) or not key or \
                not all(isinstance(c, (int, float)) for c in key):
            return
        bounds = self._bounds.get(id(node))
        if bounds is None:
            self._bounds[id(node)] = ([float(c) for c in key], [float(c) for c in key])
            return
        low, high = bounds
        for index, component in enumerate(key):
            low[index] = min(low[index], float(component))
            high[index] = max(high[index], float(component))

    def _insert(self, node: Any, key: K, value: V, level: int) -> Any:
        self.stats.node_reads += 1
        self._update_bounds(node, key)
        if isinstance(node, _LeafNode):
            node.entries.append((key, value))
            self.stats.node_writes += 1
            if len(node.entries) > self.leaf_capacity:
                return self._split_leaf(node, level)
            return node
        label = self.module.choose(key, node.level, node.state)
        child = node.children.get(label)
        if child is None:
            child = self._new_leaf()
            node.children[label] = child
        node.children[label] = self._insert(child, key, value, level + 1)
        self.stats.node_writes += 1
        return node

    def _split_leaf(self, leaf: _LeafNode, level: int) -> Any:
        keys = [key for key, _ in leaf.entries]
        labels = set()
        state = self.module.picksplit(keys, level)
        for key in keys:
            labels.add(self.module.choose(key, level, state))
        if len(labels) <= 1:
            # The module cannot discriminate these keys any further (e.g. many
            # duplicates): keep an oversized leaf rather than recursing forever.
            return leaf
        self.stats.node_splits += 1
        inner = self._new_inner(state, level)
        bounds = self._bounds.pop(id(leaf), None)
        if bounds is not None:
            self._bounds[id(inner)] = bounds
        for key, value in leaf.entries:
            label = self.module.choose(key, level, state)
            child = inner.children.get(label)
            if child is None:
                child = self._new_leaf()
                inner.children[label] = child
            child.entries.append((key, value))
            self._update_bounds(child, key)
            self.stats.node_writes += 1
        # Recursively split any child that is itself overfull.
        for label, child in list(inner.children.items()):
            if isinstance(child, _LeafNode) and len(child.entries) > self.leaf_capacity:
                inner.children[label] = self._split_leaf(child, level + 1)
        return inner

    # ------------------------------------------------------------------
    # Generic search
    # ------------------------------------------------------------------
    def search(self, query: Query) -> List[Tuple[K, V]]:
        if not self.module.supports(query):
            raise IndexError_(
                f"{self.module.name} index does not support "
                f"{type(query).__name__}"
            )
        results: List[Tuple[K, V]] = []
        self._search(self._root, query, results)
        return results

    def _search(self, node: Any, query: Query, results: List[Tuple[K, V]]) -> None:
        self.stats.node_reads += 1
        if isinstance(node, _LeafNode):
            for key, value in node.entries:
                if self.module.leaf_consistent(key, query):
                    results.append((key, value))
            return
        for label, child in node.children.items():
            if self.module.consistent(node.state, label, node.level, query):
                self._search(child, query, results)

    # Convenience wrappers ------------------------------------------------
    def search_equal(self, key: K) -> List[V]:
        return [value for _, value in self.search(EqualityQuery(key))]

    def search_prefix(self, prefix: str) -> List[Tuple[K, V]]:
        return self.search(PrefixQuery(prefix))

    def search_regex(self, pattern: str) -> List[Tuple[K, V]]:
        return self.search(RegexQuery(pattern))

    def search_substring(self, needle: str) -> List[Tuple[K, V]]:
        return self.search(SubstringQuery(needle))

    def search_box(self, low: Sequence[float], high: Sequence[float]) -> List[Tuple[K, V]]:
        return self.search(BoxQuery(tuple(low), tuple(high)))

    # ------------------------------------------------------------------
    # k-nearest-neighbour search (numeric point keys)
    # ------------------------------------------------------------------
    def knn(self, point: Sequence[float], k: int) -> List[Tuple[float, K, V]]:
        """Best-first k-NN over numeric point keys using node bounding boxes."""
        target = tuple(float(c) for c in point)
        counter = 0
        frontier: List[Tuple[float, int, Any]] = [(0.0, counter, self._root)]
        candidates: List[Tuple[float, int, K, V]] = []
        results: List[Tuple[float, K, V]] = []
        while frontier and len(results) < k:
            distance, _, node = heapq.heappop(frontier)
            self.stats.node_reads += 1
            if isinstance(node, _LeafNode):
                for key, value in node.entries:
                    counter += 1
                    heapq.heappush(candidates,
                                   (_euclidean(key, target), counter, key, value))
            else:
                for child in node.children.values():
                    counter += 1
                    heapq.heappush(frontier,
                                   (self._node_distance(child, target), counter, child))
            next_distance = frontier[0][0] if frontier else float("inf")
            while candidates and candidates[0][0] <= next_distance and len(results) < k:
                best_distance, _, key, value = heapq.heappop(candidates)
                results.append((best_distance, key, value))
        while candidates and len(results) < k:
            best_distance, _, key, value = heapq.heappop(candidates)
            results.append((best_distance, key, value))
        return results

    def _node_distance(self, node: Any, point: Tuple[float, ...]) -> float:
        bounds = self._bounds.get(id(node))
        if bounds is None:
            return 0.0
        low, high = bounds
        total = 0.0
        for component, lo, hi in zip(point, low, high):
            delta = max(lo - component, 0.0, component - hi)
            total += delta * delta
        return math.sqrt(total)


def _euclidean(key: Any, point: Tuple[float, ...]) -> float:
    return math.sqrt(sum((float(a) - b) ** 2 for a, b in zip(key, point)))
