"""A bucket-chained hash index: the second classical baseline access method.

Supports only equality lookups, which is exactly why the paper argues for
richer access methods (tries, kd-trees, quadtrees, the SBC-tree) for
biological workloads.  Bucket accesses are counted as logical I/O.
"""

from __future__ import annotations

from typing import Any, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.index.btree import IndexStatistics

K = TypeVar("K")
V = TypeVar("V")

#: Default number of initial buckets.
DEFAULT_BUCKETS = 64
#: Load factor at which the directory doubles.
MAX_LOAD_FACTOR = 4.0


class HashIndex(Generic[K, V]):
    """A chained hash table with doubling and logical I/O accounting."""

    def __init__(self, num_buckets: int = DEFAULT_BUCKETS):
        self.stats = IndexStatistics()
        self._buckets: List[List[Tuple[K, V]]] = [[] for _ in range(num_buckets)]
        self.stats.nodes_allocated = num_buckets
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def _bucket_for(self, key: K) -> List[Tuple[K, V]]:
        index = hash(key) % len(self._buckets)
        self.stats.node_reads += 1
        return self._buckets[index]

    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        bucket = self._bucket_for(key)
        bucket.append((key, value))
        self.stats.node_writes += 1
        self._size += 1
        if self._size / len(self._buckets) > MAX_LOAD_FACTOR:
            self._grow()

    def _grow(self) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        new_size = len(self._buckets) * 2
        self._buckets = [[] for _ in range(new_size)]
        self.stats.nodes_allocated += new_size
        for key, value in entries:
            index = hash(key) % new_size
            self._buckets[index].append((key, value))
            self.stats.node_writes += 1

    def delete(self, key: K, value: Optional[V] = None) -> int:
        bucket = self._bucket_for(key)
        before = len(bucket)
        if value is None:
            bucket[:] = [(k, v) for k, v in bucket if k != key]
        else:
            bucket[:] = [(k, v) for k, v in bucket if not (k == key and v == value)]
        removed = before - len(bucket)
        if removed:
            self.stats.node_writes += 1
            self._size -= removed
        return removed

    # ------------------------------------------------------------------
    def search(self, key: K) -> List[V]:
        bucket = self._bucket_for(key)
        return [value for k, value in bucket if k == key]

    def items(self) -> Iterator[Tuple[K, V]]:
        for bucket in self._buckets:
            yield from bucket
