"""The SBC-tree: indexing RLE-compressed sequences without decompression.

The paper (Section 7.2, [17]) describes the SBC-tree as a two-level index for
Run-Length-Encoded sequences: a String B-tree over the (compressed) suffixes
plus a 3-sided range structure, prototyped with an R-tree standing in for the
3-sided structure.  It supports substring matching, prefix matching, and
range search over the compressed sequences, and the paper reports roughly an
order-of-magnitude storage reduction and up to 30% fewer insertion I/Os
compared to indexing the uncompressed sequences.

The reproduction mirrors that architecture:

* suffixes are taken at *run boundaries* (that is what makes the index size
  proportional to the number of runs rather than the number of characters);
* the String B-tree is a B+-tree keyed by the run-level suffix;
* the 3-sided structure is an R-tree per run character indexing
  (run length, run index) points — it answers the "first/last run at least
  this long" part of a match, exactly the role the 3-sided structure plays in
  the paper's design;
* all searches operate on runs only; sequences are never decompressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.errors import IndexError_
from repro.index.btree import BPlusTree, IndexStatistics
from repro.index.rtree import Rect, RTree
from repro.index.sbc.rle import RleSequence, Run, rle_encode

#: Bytes charged per run when reporting compressed storage size (one byte for
#: the character plus one byte for the run length, as in the paper's Figure 12
#: textual form).
BYTES_PER_RUN = 2
#: A large coordinate standing in for +infinity in 3-sided queries.
_INFINITY = float(2 ** 31)


@dataclass(frozen=True)
class SuffixEntry:
    """Value stored in the String B-tree for one run-boundary suffix."""

    seq_id: int
    run_index: int
    #: the run immediately before the suffix (None for the first run)
    prev_char: Optional[str]
    prev_length: int


def compare_rle(left: Sequence[Run], right: Sequence[Run]) -> int:
    """Lexicographically compare two sequences given only their runs.

    Runs are consumed greedily (min of the two current counts), so the
    comparison is O(number of runs) and never materialises the decoded
    strings — the "operate on compressed data without decompressing it"
    requirement of the paper.
    """
    i = j = 0
    remaining_left = left[0][1] if left else 0
    remaining_right = right[0][1] if right else 0
    while i < len(left) and j < len(right):
        char_left, char_right = left[i][0], right[j][0]
        if char_left != char_right:
            return -1 if char_left < char_right else 1
        step = min(remaining_left, remaining_right)
        remaining_left -= step
        remaining_right -= step
        if remaining_left == 0:
            i += 1
            remaining_left = left[i][1] if i < len(left) else 0
        if remaining_right == 0:
            j += 1
            remaining_right = right[j][1] if j < len(right) else 0
    if i < len(left):
        return 1
    if j < len(right):
        return -1
    return 0


class SbcTree:
    """Two-level index over RLE-compressed sequences."""

    def __init__(self, btree_order: int = 32, rtree_max_entries: int = 16):
        self._suffixes: BPlusTree = BPlusTree(order=btree_order)
        self._three_sided: Dict[str, RTree] = {}
        self._rtree_max_entries = rtree_max_entries
        self._sequences: Dict[int, RleSequence] = {}
        #: directory of sequences sorted by compressed lexicographic order,
        #: used by range search; rebuilt lazily after inserts.
        self._directory: List[Tuple[RleSequence, int]] = []
        self._directory_dirty = False

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IndexStatistics:
        combined = IndexStatistics()
        for source in [self._suffixes.stats] + [t.stats for t in self._three_sided.values()]:
            combined.node_reads += source.node_reads
            combined.node_writes += source.node_writes
            combined.node_splits += source.node_splits
            combined.nodes_allocated += source.nodes_allocated
        return combined

    def reset_stats(self) -> None:
        self._suffixes.stats.reset()
        for rtree in self._three_sided.values():
            rtree.stats.reset()

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    def total_runs(self) -> int:
        return sum(seq.num_runs for seq in self._sequences.values())

    def total_characters(self) -> int:
        return sum(seq.original_length for seq in self._sequences.values())

    def storage_bytes(self) -> int:
        """Bytes of compressed sequence data held by the index."""
        return self.total_runs() * BYTES_PER_RUN

    def index_entries(self) -> int:
        """Number of suffix entries (one per run, not one per character)."""
        return len(self._suffixes)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, seq_id: int, sequence: str) -> RleSequence:
        """Compress ``sequence`` and index every run-boundary suffix."""
        if seq_id in self._sequences:
            raise IndexError_(f"sequence id {seq_id} already indexed")
        rle = RleSequence.from_plain(sequence)
        self._sequences[seq_id] = rle
        self._directory_dirty = True
        runs = rle.runs
        for run_index, (char, count) in enumerate(runs):
            suffix_key = runs[run_index:]
            prev_char, prev_length = (None, 0)
            if run_index > 0:
                prev_char, prev_length = runs[run_index - 1]
            self._suffixes.insert(suffix_key,
                                  SuffixEntry(seq_id, run_index, prev_char, prev_length))
            self._rtree_for(char).insert_point(float(count), float(run_index),
                                               (seq_id, run_index))
        return rle

    def _rtree_for(self, char: str) -> RTree:
        if char not in self._three_sided:
            self._three_sided[char] = RTree(self._rtree_max_entries)
        return self._three_sided[char]

    def sequence(self, seq_id: int) -> RleSequence:
        try:
            return self._sequences[seq_id]
        except KeyError as exc:
            raise IndexError_(f"no sequence with id {seq_id}") from exc

    # ------------------------------------------------------------------
    # Substring search
    # ------------------------------------------------------------------
    def search_substring(self, pattern: str) -> Set[int]:
        """Sequence ids containing ``pattern`` as a substring."""
        if not pattern:
            return set(self._sequences)
        pattern_runs = rle_encode(pattern)
        if len(pattern_runs) == 1:
            return self._search_single_run(pattern_runs[0])
        if len(pattern_runs) == 2:
            return self._search_two_runs(pattern_runs[0], pattern_runs[1])
        return self._search_multi_run(pattern_runs)

    def _search_single_run(self, run: Run) -> Set[int]:
        """Pattern of one run (c, m): any run of char c with length >= m matches."""
        char, minimum = run
        rtree = self._three_sided.get(char)
        if rtree is None:
            return set()
        hits = rtree.range_search(Rect(float(minimum), 0.0, _INFINITY, _INFINITY))
        return {seq_id for _, (seq_id, _) in hits}

    def _search_two_runs(self, first: Run, second: Run) -> Set[int]:
        """Pattern r1 r2: the occurrence crosses exactly one run boundary.

        The suffix starting at the second run must begin with a run of
        ``second.char`` of length >= second.count (the 3-sided query) and the
        *preceding* run must be of ``first.char`` with length >= first.count.
        """
        char, minimum = second
        rtree = self._three_sided.get(char)
        if rtree is None:
            return set()
        hits = rtree.range_search(Rect(float(minimum), 0.0, _INFINITY, _INFINITY))
        matches: Set[int] = set()
        for _, (seq_id, run_index) in hits:
            if run_index == 0:
                continue
            prev_char, prev_length = self._sequences[seq_id].runs[run_index - 1]
            if prev_char == first[0] and prev_length >= first[1]:
                matches.add(seq_id)
        return matches

    def _search_multi_run(self, pattern_runs: List[Run]) -> Set[int]:
        """Pattern of three or more runs.

        The middle runs must match complete runs exactly; they form the prefix
        probed in the String B-tree.  The last run is checked as a >= length
        condition on the run following the middle block, and the first run as
        a >= length condition on the run preceding it (stored with the suffix
        entry, playing the 3-sided structure's role for the prototype).
        """
        first = pattern_runs[0]
        middle = tuple(pattern_runs[1:-1])
        last = pattern_runs[-1]
        candidates = self._suffixes.prefix_search(middle)
        matches: Set[int] = set()
        for suffix_key, entry in candidates:
            if entry.prev_char != first[0] or entry.prev_length < first[1]:
                continue
            following_index = len(middle)
            if following_index >= len(suffix_key):
                continue
            follow_char, follow_length = suffix_key[following_index]
            if follow_char == last[0] and follow_length >= last[1]:
                matches.add(entry.seq_id)
        return matches

    # ------------------------------------------------------------------
    # Prefix matching
    # ------------------------------------------------------------------
    def search_prefix(self, pattern: str) -> Set[int]:
        """Sequence ids whose decoded sequence starts with ``pattern``."""
        if not pattern:
            return set(self._sequences)
        pattern_runs = rle_encode(pattern)
        matches: Set[int] = set()
        for seq_id, rle in self._sequences_with_first_run(pattern_runs[0][0]):
            if self._prefix_matches(rle.runs, pattern_runs):
                matches.add(seq_id)
        return matches

    def _sequences_with_first_run(self, char: str) -> Iterable[Tuple[int, RleSequence]]:
        """Candidate sequences whose first run has the right character.

        Uses the 3-sided structure (run index == 0) to avoid touching
        sequences that cannot match.
        """
        rtree = self._three_sided.get(char)
        if rtree is None:
            return []
        hits = rtree.range_search(Rect(0.0, 0.0, _INFINITY, 0.0))
        return [(seq_id, self._sequences[seq_id]) for _, (seq_id, run_index) in hits
                if run_index == 0]

    @staticmethod
    def _prefix_matches(runs: Tuple[Run, ...], pattern_runs: List[Run]) -> bool:
        if len(pattern_runs) > len(runs):
            return False
        for index, (char, count) in enumerate(pattern_runs):
            run_char, run_count = runs[index]
            if run_char != char:
                return False
            is_last = index == len(pattern_runs) - 1
            if is_last:
                if run_count < count:
                    return False
            elif run_count != count:
                return False
        return True

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def _rebuild_directory(self) -> None:
        import functools
        entries = [(rle, seq_id) for seq_id, rle in self._sequences.items()]
        entries.sort(key=functools.cmp_to_key(
            lambda a, b: compare_rle(a[0].runs, b[0].runs)))
        self._directory = entries
        self._directory_dirty = False

    def range_search(self, low: str, high: str) -> List[int]:
        """Sequence ids whose decoded value lies in [low, high] lexicographically.

        The comparison runs over the compressed runs only.
        """
        if self._directory_dirty:
            self._rebuild_directory()
        low_runs, high_runs = rle_encode(low), rle_encode(high)
        results = []
        for rle, seq_id in self._directory:
            if compare_rle(rle.runs, low_runs) < 0:
                continue
            if compare_rle(rle.runs, high_runs) > 0:
                break
            results.append(seq_id)
        return results
