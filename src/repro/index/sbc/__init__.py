"""SBC-tree package: RLE compression and indexing of compressed sequences."""

from repro.index.sbc.baseline import UncompressedSuffixIndex
from repro.index.sbc.rle import (
    RleSequence,
    compression_ratio,
    rle_decode,
    rle_encode,
    rle_encode_bits,
    rle_encoded_length,
    rle_from_string,
    rle_to_string,
)
from repro.index.sbc.sbc_tree import SbcTree, SuffixEntry, compare_rle

__all__ = [
    "UncompressedSuffixIndex",
    "RleSequence",
    "compression_ratio",
    "rle_decode",
    "rle_encode",
    "rle_encode_bits",
    "rle_encoded_length",
    "rle_from_string",
    "rle_to_string",
    "SbcTree",
    "SuffixEntry",
    "compare_rle",
]
