"""Baseline for the SBC-tree experiments: a String B-tree over *uncompressed*
sequences.

The paper compares the SBC-tree against the String B-tree built over the
uncompressed sequences (Section 7.2): the SBC-tree keeps the optimal search
behaviour while storing roughly an order of magnitude less data and paying
fewer I/Os on insertion.  This baseline indexes every character-level suffix
(the classical String B-tree layout), so both its entry count and its
insertion I/O scale with the number of characters rather than the number of
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.errors import IndexError_
from repro.index.btree import BPlusTree, IndexStatistics

#: Suffix keys are truncated to this many characters, the usual engineering
#: compromise in String B-tree implementations (ties are resolved by a final
#: verification against the stored sequence).
DEFAULT_KEY_LENGTH = 48
#: Bytes charged per character when reporting uncompressed storage size.
BYTES_PER_CHAR = 1


@dataclass(frozen=True)
class PlainSuffixEntry:
    seq_id: int
    offset: int


class UncompressedSuffixIndex:
    """String B-tree over every character-level suffix of every sequence."""

    def __init__(self, btree_order: int = 32, key_length: int = DEFAULT_KEY_LENGTH):
        self._btree: BPlusTree = BPlusTree(order=btree_order)
        self._key_length = key_length
        self._sequences: Dict[int, str] = {}

    # ------------------------------------------------------------------
    @property
    def stats(self) -> IndexStatistics:
        return self._btree.stats

    def reset_stats(self) -> None:
        self._btree.stats.reset()

    @property
    def num_sequences(self) -> int:
        return len(self._sequences)

    def total_characters(self) -> int:
        return sum(len(seq) for seq in self._sequences.values())

    def storage_bytes(self) -> int:
        return self.total_characters() * BYTES_PER_CHAR

    def index_entries(self) -> int:
        return len(self._btree)

    # ------------------------------------------------------------------
    def insert(self, seq_id: int, sequence: str) -> None:
        if seq_id in self._sequences:
            raise IndexError_(f"sequence id {seq_id} already indexed")
        self._sequences[seq_id] = sequence
        for offset in range(len(sequence)):
            key = sequence[offset:offset + self._key_length]
            self._btree.insert(key, PlainSuffixEntry(seq_id, offset))

    # ------------------------------------------------------------------
    def search_substring(self, pattern: str) -> Set[int]:
        if not pattern:
            return set(self._sequences)
        probe = pattern[:self._key_length]
        matches: Set[int] = set()
        for key, entry in self._btree.prefix_search(probe):
            sequence = self._sequences[entry.seq_id]
            if sequence.startswith(pattern, entry.offset):
                matches.add(entry.seq_id)
        return matches

    def search_prefix(self, pattern: str) -> Set[int]:
        return {
            seq_id for seq_id, sequence in self._sequences.items()
            if sequence.startswith(pattern)
        }

    def range_search(self, low: str, high: str) -> List[int]:
        return sorted(
            seq_id for seq_id, sequence in self._sequences.items()
            if low <= sequence <= high
        )
