"""Run-Length Encoding (RLE) for biological sequences and bitmaps.

RLE replaces consecutive repeats of a character C by one occurrence of C
followed by its frequency (Golomb 1966, cited as [23] in the paper).  It is
the compression format the SBC-tree (Section 7.2) indexes directly, and is
also used to compress the outdated-cell bitmaps of Section 5.

Protein secondary-structure sequences (runs of H/E/L) compress extremely well
under RLE, which is where the paper's "order of magnitude reduction in
storage" claim comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.errors import IndexError_

#: One run: (character, repeat count).
Run = Tuple[str, int]


def rle_encode(sequence: str) -> List[Run]:
    """Encode ``sequence`` as a list of (character, count) runs."""
    runs: List[Run] = []
    previous = None
    count = 0
    for char in sequence:
        if char == previous:
            count += 1
        else:
            if previous is not None:
                runs.append((previous, count))
            previous = char
            count = 1
    if previous is not None:
        runs.append((previous, count))
    return runs


def rle_decode(runs: Iterable[Run]) -> str:
    """Decode a list of runs back into the original sequence."""
    return "".join(char * count for char, count in runs)


def rle_to_string(runs: Iterable[Run]) -> str:
    """Render runs in the paper's textual form, e.g. ``L3E7H22``."""
    return "".join(f"{char}{count}" for char, count in runs)


def rle_from_string(text: str) -> List[Run]:
    """Parse the textual form produced by :func:`rle_to_string`."""
    runs: List[Run] = []
    i, n = 0, len(text)
    while i < n:
        char = text[i]
        i += 1
        start = i
        while i < n and text[i].isdigit():
            i += 1
        if start == i:
            raise IndexError_(f"malformed RLE string at offset {start}: missing count")
        runs.append((char, int(text[start:i])))
    return runs


def rle_encoded_length(sequence: str) -> int:
    """Number of runs in the RLE encoding of ``sequence``."""
    return len(rle_encode(sequence))


def compression_ratio(sequence: str, bytes_per_run: int = 5) -> float:
    """Uncompressed bytes / compressed bytes for one sequence.

    A run is charged ``bytes_per_run`` bytes (1 byte for the character plus a
    4-byte count by default); the uncompressed form is charged 1 byte per
    character.
    """
    if not sequence:
        return 1.0
    compressed = rle_encoded_length(sequence) * bytes_per_run
    return len(sequence) / compressed if compressed else float("inf")


@dataclass(frozen=True)
class RleSequence:
    """A sequence stored in RLE form, with the accessors indexes need.

    The SBC-tree operates over the compressed form without decompressing it;
    this class provides run-level access plus the mapping between compressed
    positions (run index) and original positions (character offsets).
    """

    runs: Tuple[Run, ...]

    @classmethod
    def from_plain(cls, sequence: str) -> "RleSequence":
        return cls(tuple(rle_encode(sequence)))

    @classmethod
    def from_runs(cls, runs: Iterable[Run]) -> "RleSequence":
        return cls(tuple(runs))

    # ------------------------------------------------------------------
    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def original_length(self) -> int:
        return sum(count for _, count in self.runs)

    def decode(self) -> str:
        return rle_decode(self.runs)

    def char_at(self, position: int) -> str:
        """Character at original offset ``position`` without full decompression."""
        if position < 0:
            raise IndexError_("negative position")
        remaining = position
        for char, count in self.runs:
            if remaining < count:
                return char
            remaining -= count
        raise IndexError_(f"position {position} beyond sequence of length "
                          f"{self.original_length}")

    def run_starts(self) -> List[int]:
        """Original offsets at which each run begins."""
        starts = []
        offset = 0
        for _, count in self.runs:
            starts.append(offset)
            offset += count
        return starts

    def suffix_runs(self, run_index: int) -> Tuple[Run, ...]:
        """The run-level suffix starting at run ``run_index``."""
        return self.runs[run_index:]

    def storage_bytes(self, bytes_per_run: int = 5) -> int:
        return self.num_runs * bytes_per_run

    def __str__(self) -> str:
        return rle_to_string(self.runs)


def rle_encode_bits(bits: Sequence[int]) -> List[Tuple[int, int]]:
    """RLE over a 0/1 bit vector, used to compress outdated-cell bitmaps."""
    runs: List[Tuple[int, int]] = []
    previous = None
    count = 0
    for bit in bits:
        bit = 1 if bit else 0
        if bit == previous:
            count += 1
        else:
            if previous is not None:
                runs.append((previous, count))
            previous = bit
            count = 1
    if previous is not None:
        runs.append((previous, count))
    return runs
