"""A simple R-tree over axis-aligned rectangles.

Used in two roles, mirroring the paper:

* as the multi-dimensional baseline the SP-GiST experiments compare against
  (Section 7.1), and
* as the 3-sided range structure inside the SBC-tree prototype — the paper
  states "the SBC-tree index is prototyped in PostgreSQL with an R-tree in
  place of the 3-sided structure" (Section 7.2).

Node accesses are counted as logical I/O via :class:`IndexStatistics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import IndexError_
from repro.index.btree import IndexStatistics

#: Default maximum number of entries per node.
DEFAULT_MAX_ENTRIES = 16


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (works for points: min == max)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise IndexError_(f"degenerate rectangle {self!r}")

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.min_x, other.min_x), min(self.min_y, other.min_y),
                    max(self.max_x, other.max_x), max(self.max_y, other.max_y))

    def enlargement(self, other: "Rect") -> float:
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return not (self.max_x < other.min_x or other.max_x < self.min_x or
                    self.max_y < other.min_y or other.max_y < self.min_y)

    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def min_distance_to(self, x: float, y: float) -> float:
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)


class _RNode:
    __slots__ = ("is_leaf", "entries", "children", "bounds")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: List[Tuple[Rect, Any]] = []
        self.children: List["_RNode"] = []
        self.bounds: Optional[Rect] = None

    def recompute_bounds(self) -> None:
        rects = ([rect for rect, _ in self.entries] if self.is_leaf
                 else [child.bounds for child in self.children if child.bounds])
        if not rects:
            self.bounds = None
            return
        bounds = rects[0]
        for rect in rects[1:]:
            bounds = bounds.union(rect)
        self.bounds = bounds


class RTree:
    """An R-tree with quadratic-ish split and logical I/O accounting."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise IndexError_("R-tree max_entries must be at least 4")
        self.max_entries = max_entries
        self.stats = IndexStatistics()
        self._root = self._new_node(is_leaf=True)
        self._size = 0

    def _new_node(self, is_leaf: bool) -> _RNode:
        self.stats.nodes_allocated += 1
        return _RNode(is_leaf)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, value: Any) -> None:
        split = self._insert(self._root, rect, value)
        if split is not None:
            left, right = split
            new_root = self._new_node(is_leaf=False)
            new_root.children = [left, right]
            new_root.recompute_bounds()
            self._root = new_root
            self.stats.node_writes += 1
        self._size += 1

    def insert_point(self, x: float, y: float, value: Any) -> None:
        self.insert(Rect.point(x, y), value)

    def _insert(self, node: _RNode, rect: Rect, value: Any) -> Optional[Tuple[_RNode, _RNode]]:
        self.stats.node_reads += 1
        if node.is_leaf:
            node.entries.append((rect, value))
            node.recompute_bounds()
            self.stats.node_writes += 1
            if len(node.entries) > self.max_entries:
                return self._split_leaf(node)
            return None
        best = self._choose_child(node, rect)
        split = self._insert(best, rect, value)
        if split is not None:
            left, right = split
            node.children.remove(best)
            node.children.extend([left, right])
            self.stats.node_writes += 1
            if len(node.children) > self.max_entries:
                result = self._split_inner(node)
                node.recompute_bounds()
                return result
        node.recompute_bounds()
        return None

    def _choose_child(self, node: _RNode, rect: Rect) -> _RNode:
        best, best_cost = None, None
        for child in node.children:
            bounds = child.bounds or rect
            cost = (bounds.enlargement(rect), bounds.area())
            if best_cost is None or cost < best_cost:
                best, best_cost = child, cost
        return best

    def _split_leaf(self, node: _RNode) -> Tuple[_RNode, _RNode]:
        self.stats.node_splits += 1
        entries = sorted(node.entries, key=lambda e: (e[0].min_x, e[0].min_y))
        middle = len(entries) // 2
        left, right = self._new_node(True), self._new_node(True)
        left.entries, right.entries = entries[:middle], entries[middle:]
        left.recompute_bounds()
        right.recompute_bounds()
        self.stats.node_writes += 2
        return left, right

    def _split_inner(self, node: _RNode) -> Tuple[_RNode, _RNode]:
        self.stats.node_splits += 1
        children = sorted(node.children,
                          key=lambda c: (c.bounds.min_x if c.bounds else 0.0,
                                         c.bounds.min_y if c.bounds else 0.0))
        middle = len(children) // 2
        left, right = self._new_node(False), self._new_node(False)
        left.children, right.children = children[:middle], children[middle:]
        left.recompute_bounds()
        right.recompute_bounds()
        self.stats.node_writes += 2
        return left, right

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: Rect) -> List[Tuple[Rect, Any]]:
        """Every entry whose rectangle intersects ``query``."""
        results: List[Tuple[Rect, Any]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_reads += 1
            if node.bounds is not None and not node.bounds.intersects(query):
                continue
            if node.is_leaf:
                for rect, value in node.entries:
                    if rect.intersects(query):
                        results.append((rect, value))
            else:
                for child in node.children:
                    if child.bounds is None or child.bounds.intersects(query):
                        stack.append(child)
        return results

    def point_search(self, x: float, y: float) -> List[Any]:
        return [value for _, value in self.range_search(Rect.point(x, y))]

    def knn(self, x: float, y: float, k: int) -> List[Tuple[float, Any]]:
        """The ``k`` entries nearest to (x, y), as (distance, value) pairs."""
        import heapq
        heap: List[Tuple[float, int, Any]] = []
        counter = 0
        candidates: List[Tuple[float, int, _RNode]] = [(0.0, counter, self._root)]
        results: List[Tuple[float, Any]] = []
        while candidates and len(results) < k:
            distance, _, node = heapq.heappop(candidates)
            self.stats.node_reads += 1
            if node.is_leaf:
                for rect, value in node.entries:
                    counter += 1
                    heapq.heappush(heap, (rect.min_distance_to(x, y), counter, value))
            else:
                for child in node.children:
                    if child.bounds is None:
                        continue
                    counter += 1
                    heapq.heappush(
                        candidates,
                        (child.bounds.min_distance_to(x, y), counter, child),
                    )
            # Pop confirmed results: leaf entries closer than the next node.
            next_node_distance = candidates[0][0] if candidates else float("inf")
            while heap and heap[0][0] <= next_node_distance and len(results) < k:
                best_distance, _, value = heapq.heappop(heap)
                results.append((best_distance, value))
        while heap and len(results) < k:
            best_distance, _, value = heapq.heappop(heap)
            results.append((best_distance, value))
        return results
