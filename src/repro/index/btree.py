"""An in-memory B+-tree used as the baseline one-dimensional access method.

The paper compares its space-partitioning indexes against the B+-tree
(Section 7.1) and builds the SBC-tree on top of a String B-tree, which this
module also provides (a B+-tree whose keys are tuples of runs).  Node
accesses are counted so that benchmarks can report I/O in the same units for
every access method: one node touched == one logical page I/O.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.core.errors import IndexError_

K = TypeVar("K")
V = TypeVar("V")

#: Default fan-out of a node.
DEFAULT_ORDER = 32


@dataclass
class IndexStatistics:
    """Logical I/O counters shared by the access-method implementations."""

    node_reads: int = 0
    node_writes: int = 0
    node_splits: int = 0
    nodes_allocated: int = 0

    @property
    def total_io(self) -> int:
        return self.node_reads + self.node_writes

    def snapshot(self) -> "IndexStatistics":
        return IndexStatistics(self.node_reads, self.node_writes,
                               self.node_splits, self.nodes_allocated)

    def diff(self, earlier: "IndexStatistics") -> "IndexStatistics":
        return IndexStatistics(
            self.node_reads - earlier.node_reads,
            self.node_writes - earlier.node_writes,
            self.node_splits - earlier.node_splits,
            self.nodes_allocated - earlier.nodes_allocated,
        )

    def reset(self) -> None:
        self.node_reads = 0
        self.node_writes = 0
        self.node_splits = 0
        self.nodes_allocated = 0


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []   # inner nodes only
        self.values: List[List[Any]] = []   # leaf nodes only (one list per key)
        self.next_leaf: Optional["_Node"] = None


class BPlusTree(Generic[K, V]):
    """A B+-tree mapping keys to lists of values (duplicates allowed)."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise IndexError_("B+-tree order must be at least 3")
        self.order = order
        self.stats = IndexStatistics()
        self._root = self._new_node(is_leaf=True)
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    def _new_node(self, is_leaf: bool) -> _Node:
        self.stats.nodes_allocated += 1
        return _Node(is_leaf)

    def _touch_read(self, node: _Node) -> None:
        self.stats.node_reads += 1

    def _touch_write(self, node: _Node) -> None:
        self.stats.node_writes += 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    @property
    def num_nodes(self) -> int:
        return self.stats.nodes_allocated

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        result = self._insert(self._root, key, value)
        if result is not None:
            separator, right = result
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self._touch_write(new_root)
        self._size += 1

    def _insert(self, node: _Node, key: K, value: V) -> Optional[Tuple[Any, _Node]]:
        self._touch_read(node)
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
            self._touch_write(node)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[index], key, value)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        self._touch_write(node)
        if len(node.keys) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        self.stats.node_splits += 1
        middle = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        self._touch_write(node)
        self._touch_write(right)
        return right.keys[0], right

    def _split_inner(self, node: _Node) -> Tuple[Any, _Node]:
        self.stats.node_splits += 1
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        self._touch_write(node)
        self._touch_write(right)
        return separator, right

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: K, value: Optional[V] = None) -> int:
        """Remove ``value`` under ``key`` (or every value when ``value`` is None).

        Underflowed nodes are not rebalanced (deletes are rare in the
        workloads of the paper); lookups remain correct.
        """
        node = self._find_leaf(key)
        index = bisect.bisect_left(node.keys, key)
        if index >= len(node.keys) or node.keys[index] != key:
            return 0
        removed = 0
        if value is None:
            removed = len(node.values[index])
            del node.keys[index]
            del node.values[index]
        else:
            before = len(node.values[index])
            node.values[index] = [v for v in node.values[index] if v != value]
            removed = before - len(node.values[index])
            if not node.values[index]:
                del node.keys[index]
                del node.values[index]
        self._touch_write(node)
        self._size -= removed
        return removed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _find_leaf(self, key: K) -> _Node:
        node = self._root
        self._touch_read(node)
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
            self._touch_read(node)
        return node

    def search(self, key: K) -> List[V]:
        node = self._find_leaf(key)
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return list(node.values[index])
        return []

    def range_search(self, low: Optional[K] = None, high: Optional[K] = None,
                     include_low: bool = True, include_high: bool = True) -> List[Tuple[K, V]]:
        """All (key, value) pairs with low <= key <= high (bounds optional)."""
        return list(self.iter_range(low, high, include_low, include_high))

    def iter_range(self, low: Optional[K] = None, high: Optional[K] = None,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[Tuple[K, V]]:
        """Lazily yield (key, value) pairs with low <= key <= high, in key order.

        The start position is found by descending to the leaf that would hold
        ``low`` and bisecting inside it (instead of linearly skipping keys
        below the bound); from there the scan walks the leaf chain and stops
        at the first key above ``high``.  Reversed or empty bounds yield
        nothing.  This is the access method behind the planner's
        ``IndexRangeScan`` and the executor's sort elision: consumers that
        stop early (LIMIT) never touch the rest of the leaf chain.
        """
        if low is not None:
            node = self._find_leaf(low)
            start = (bisect.bisect_left(node.keys, low) if include_low
                     else bisect.bisect_right(node.keys, low))
        else:
            node = self._root
            self._touch_read(node)
            while not node.is_leaf:
                node = node.children[0]
                self._touch_read(node)
            start = 0
        while node is not None:
            keys = node.keys
            end = len(keys)
            if high is not None:
                end = (bisect.bisect_right(keys, high, start) if include_high
                       else bisect.bisect_left(keys, high, start))
            for index in range(start, end):
                key = keys[index]
                for value in node.values[index]:
                    yield key, value
            if end < len(keys):
                return
            node = node.next_leaf
            start = 0
            if node is not None:
                self._touch_read(node)

    def iter_range_desc(self, low: Optional[K] = None,
                        high: Optional[K] = None,
                        include_low: bool = True,
                        include_high: bool = True) -> Iterator[Tuple[K, V]]:
        """Lazily yield (key, value) pairs of the range in *descending* order.

        Leaves have no back pointer, so the traversal descends recursively
        from the root and walks each inner node's children right-to-left,
        pruning subtrees outside [low, high] with (deliberately widened)
        bisect bounds on the separator keys; the exact window is re-bisected
        inside each leaf, so the pruning can only over-visit, never skip.
        Like :meth:`iter_range`, early-stopping consumers (ORDER BY ... DESC
        LIMIT k) only touch the right edge of the tree.
        """
        yield from self._iter_desc(self._root, low, high,
                                   include_low, include_high)

    def _iter_desc(self, node: _Node, low: Optional[K], high: Optional[K],
                   include_low: bool, include_high: bool,
                   ) -> Iterator[Tuple[K, V]]:
        self._touch_read(node)
        keys = node.keys
        if node.is_leaf:
            start = 0
            if low is not None:
                start = (bisect.bisect_left(keys, low) if include_low
                         else bisect.bisect_right(keys, low))
            end = len(keys)
            if high is not None:
                end = (bisect.bisect_right(keys, high) if include_high
                       else bisect.bisect_left(keys, high))
            for index in range(end - 1, start - 1, -1):
                key = keys[index]
                for value in reversed(node.values[index]):
                    yield key, value
            return
        # Children [first, last] can hold keys inside the range: a child at
        # position i spans (keys[i-1], keys[i]].  The bounds are widened by
        # one on each side (bisect_left for low, bisect_right for high), so
        # boundary-equal separators never prune a child that could hold a
        # qualifying key; the leaf-level bisect above trims exactly.
        first = 0 if low is None else bisect.bisect_left(keys, low)
        last = len(keys) if high is None else bisect.bisect_right(keys, high)
        for index in range(min(last, len(node.children) - 1), first - 1, -1):
            yield from self._iter_desc(node.children[index], low, high,
                                       include_low, include_high)

    def prefix_search(self, prefix: K) -> List[Tuple[K, V]]:
        """All entries whose key starts with ``prefix``.

        Supported for string keys and tuple keys (component-wise prefix).
        """
        results: List[Tuple[K, V]] = []
        node = self._find_leaf(prefix)
        first = bisect.bisect_left(node.keys, prefix)
        while node is not None:
            advanced = False
            for key, values in zip(node.keys[first:], node.values[first:]):
                if _has_prefix(key, prefix):
                    for value in values:
                        results.append((key, value))
                    advanced = True
                elif key > prefix:
                    return results
            node = node.next_leaf
            first = 0
            if node is not None:
                self._touch_read(node)
            if not advanced and results:
                return results
        return results

    def items(self) -> Iterator[Tuple[K, V]]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, values in zip(node.keys, node.values):
                for value in values:
                    yield key, value
            node = node.next_leaf

    def keys(self) -> List[K]:
        return [key for key, _ in self.items()]


def _has_prefix(key: Any, prefix: Any) -> bool:
    if isinstance(key, str) and isinstance(prefix, str):
        return key.startswith(prefix)
    if isinstance(key, tuple) and isinstance(prefix, tuple):
        if len(prefix) > len(key):
            return False
        return key[:len(prefix)] == prefix
    return key == prefix
