"""Access methods: B+-tree, hash, R-tree, SP-GiST instantiations, SBC-tree."""

from repro.index.btree import BPlusTree, IndexStatistics
from repro.index.hash_index import HashIndex
from repro.index.manager import IndexManager, SecondaryIndex
from repro.index.rtree import Rect, RTree

__all__ = [
    "BPlusTree",
    "IndexStatistics",
    "HashIndex",
    "IndexManager",
    "SecondaryIndex",
    "Rect",
    "RTree",
]
