"""Secondary-index registry used by the engine for CREATE INDEX / DROP INDEX.

Indexes map a column value (or tuple of column values) to tuple ids of the
indexed table.  The engine keeps them synchronised on INSERT/UPDATE/DELETE;
applications and benchmarks use :meth:`IndexManager.lookup` for point queries
and :meth:`IndexManager.get` for direct access to the underlying structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import SystemCatalog
from repro.core.errors import IndexError_
from repro.index.btree import BPlusTree
from repro.index.hash_index import HashIndex

#: Index methods accepted by CREATE INDEX ... USING <method>.
SUPPORTED_METHODS = ("btree", "hash")


@dataclass
class SecondaryIndex:
    """A named secondary index over one or more columns of a table.

    Rows whose key contains NULL or NaN are *not* inserted into the ordered
    structure: SQL equality never matches NULL, and NaN compares unordered
    under Python's ``<`` so it would silently corrupt the B-tree's bisect
    invariants.  The ``null_keys`` / ``nan_keys`` counters record how many
    live rows are missing from the structure for each reason, so the planner
    can tell when an index-order or range scan would drop rows (NULLs fail
    every range predicate, but NaN rows satisfy lower-bound-only ranges —
    ``compare_values`` orders NaN above every number).
    """

    name: str
    table: str
    columns: Tuple[str, ...]
    method: str
    structure: Any
    null_keys: int = 0
    nan_keys: int = 0

    def key_of(self, row: Dict[str, Any]) -> Any:
        values = tuple(row[column] for column in self.columns)
        return values[0] if len(values) == 1 else values

    def key_is_null(self, key: Any) -> bool:
        """NULL key columns are not indexed: SQL equality never matches NULL,
        and B-tree ordering cannot compare None against real values."""
        if isinstance(key, tuple):
            return any(value is None for value in key)
        return key is None

    def key_has_nan(self, key: Any) -> bool:
        """NaN key columns are not indexed (unordered under ``<``)."""
        if isinstance(key, tuple):
            return any(isinstance(value, float) and value != value
                       for value in key)
        return isinstance(key, float) and key != key

    # -- maintenance (keeps the skip counters in lock-step) -------------
    def add_entry(self, key: Any, tuple_id: int) -> None:
        if self.key_is_null(key):
            self.null_keys += 1
        elif self.key_has_nan(key):
            self.nan_keys += 1
        else:
            self.structure.insert(key, tuple_id)

    def remove_entry(self, key: Any, tuple_id: int) -> None:
        if self.key_is_null(key):
            self.null_keys -= 1
        elif self.key_has_nan(key):
            self.nan_keys -= 1
        else:
            self.structure.delete(key, tuple_id)


class IndexManager:
    """Creates, maintains, and answers lookups on secondary indexes."""

    def __init__(self, catalog: SystemCatalog):
        self.catalog = catalog
        self._indexes: Dict[str, SecondaryIndex] = {}

    # ------------------------------------------------------------------
    def create_index(self, name: str, table: str, columns: Sequence[str],
                     method: str = "btree") -> SecondaryIndex:
        key = name.lower()
        if key in self._indexes:
            raise IndexError_(f"index {name!r} already exists")
        method = method.lower()
        if method not in SUPPORTED_METHODS:
            raise IndexError_(
                f"unsupported index method {method!r}; supported: "
                f"{', '.join(SUPPORTED_METHODS)}"
            )
        catalog_table = self.catalog.table(table)
        resolved = [catalog_table.schema.column(column).name for column in columns]
        structure = BPlusTree() if method == "btree" else HashIndex()
        index = SecondaryIndex(name, catalog_table.name, tuple(resolved), method, structure)
        # Bulk-build from the current contents (NULL/NaN keys stay unindexed
        # and are counted so the planner knows the structure is incomplete).
        names = catalog_table.schema.column_names
        for tuple_id, row in catalog_table.scan():
            index.add_entry(index.key_of(dict(zip(names, row))), tuple_id)
        self._indexes[key] = index
        # A new access path changes what the planner would choose: cached
        # plans built without this index must be re-planned.
        self.catalog.bump_schema_version()
        journal = getattr(self.catalog, "journal", None)
        if journal is not None:
            journal.note_create_index(index.name, index.table, index.columns,
                                      method)
        return index

    def drop_index(self, name: str) -> None:
        key = name.lower()
        if key not in self._indexes:
            raise IndexError_(f"index {name!r} does not exist")
        del self._indexes[key]
        self.catalog.bump_schema_version()
        journal = getattr(self.catalog, "journal", None)
        if journal is not None:
            journal.note_drop_index(name)

    def drop_indexes_for(self, table: str) -> None:
        doomed = [name for name, index in self._indexes.items()
                  if index.table.lower() == table.lower()]
        for name in doomed:
            del self._indexes[name]
        if doomed:
            self.catalog.bump_schema_version()

    def get(self, name: str) -> SecondaryIndex:
        try:
            return self._indexes[name.lower()]
        except KeyError as exc:
            raise IndexError_(f"index {name!r} does not exist") from exc

    def indexes_for(self, table: str) -> List[SecondaryIndex]:
        return [index for index in self._indexes.values()
                if index.table.lower() == table.lower()]

    def index_names(self) -> List[str]:
        return sorted(index.name for index in self._indexes.values())

    # ------------------------------------------------------------------
    # Maintenance hooks called by the engine
    # ------------------------------------------------------------------
    def on_insert(self, table: str, tuple_id: int, row: Dict[str, Any]) -> None:
        for index in self.indexes_for(table):
            index.add_entry(index.key_of(row), tuple_id)

    def on_delete(self, table: str, tuple_id: int, row: Dict[str, Any]) -> None:
        for index in self.indexes_for(table):
            index.remove_entry(index.key_of(row), tuple_id)

    def on_update(self, table: str, tuple_id: int, old_row: Dict[str, Any],
                  new_row: Dict[str, Any]) -> None:
        for index in self.indexes_for(table):
            old_key, new_key = index.key_of(old_row), index.key_of(new_row)
            if old_key != new_key:
                index.remove_entry(old_key, tuple_id)
                index.add_entry(new_key, tuple_id)

    # ------------------------------------------------------------------
    def lookup(self, index_name: str, key: Any) -> List[int]:
        """Tuple ids whose indexed key equals ``key``."""
        return list(self.get(index_name).structure.search(key))
