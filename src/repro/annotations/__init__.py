"""Annotation management: first-class annotations at multiple granularities."""

from repro.annotations.manager import AnnotationManager, AnnotationTable, PropagationIndex
from repro.annotations.model import (
    Annotation,
    CATEGORY_COMMENT,
    CATEGORY_PROVENANCE,
    CATEGORY_STATUS,
    Cell,
    Region,
    cells_for_columns,
    cells_for_table,
    cells_for_tuples,
    decompose_cells,
)
from repro.annotations.storage import (
    SCHEME_COMPACT,
    SCHEME_NAIVE,
    AnnotationLinkageStore,
    CompactRegionStore,
    NaiveCellStore,
)
from repro.annotations.xml_utils import (
    XmlSchema,
    annotation_text,
    body_fields,
    extract_field,
    is_xml,
    wrap_annotation,
)

__all__ = [
    "AnnotationManager",
    "AnnotationTable",
    "PropagationIndex",
    "Annotation",
    "CATEGORY_COMMENT",
    "CATEGORY_PROVENANCE",
    "CATEGORY_STATUS",
    "Cell",
    "Region",
    "cells_for_columns",
    "cells_for_table",
    "cells_for_tuples",
    "decompose_cells",
    "SCHEME_COMPACT",
    "SCHEME_NAIVE",
    "AnnotationLinkageStore",
    "CompactRegionStore",
    "NaiveCellStore",
    "XmlSchema",
    "annotation_text",
    "body_fields",
    "extract_field",
    "is_xml",
    "wrap_annotation",
]
