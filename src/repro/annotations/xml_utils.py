"""Helpers for XML-formatted annotation bodies.

The paper proposes XML-formatted annotations (Section 3.2) so that users can
semi-structure their annotations and query them, and so that provenance data
can follow a predefined XML schema (Section 4).  These helpers wrap the
standard-library ElementTree parser with tolerant behaviour for plain-text
bodies: a body that is not well-formed XML is treated as an unstructured
comment.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Dict, List, Optional

from repro.core.errors import AnnotationError


def is_xml(body: str) -> bool:
    """Return True when ``body`` parses as a well-formed XML document."""
    text = body.strip()
    if not text.startswith("<"):
        return False
    try:
        ElementTree.fromstring(text)
        return True
    except ElementTree.ParseError:
        return False


def parse_body(body: str) -> Optional[ElementTree.Element]:
    """Parse an annotation body, returning ``None`` for plain-text bodies."""
    text = body.strip()
    if not text.startswith("<"):
        return None
    try:
        return ElementTree.fromstring(text)
    except ElementTree.ParseError:
        return None


def wrap_annotation(text: str, tag: str = "Annotation") -> str:
    """Wrap plain text in the ``<Annotation>`` element used by the paper."""
    return f"<{tag}>{escape_text(text)}</{tag}>"


def escape_text(text: str) -> str:
    return (text.replace("&", "&amp;")
                .replace("<", "&lt;")
                .replace(">", "&gt;"))


def annotation_text(body: str) -> str:
    """Extract the human-readable text of an annotation body.

    For XML bodies this is the concatenated text content; plain-text bodies
    are returned unchanged.
    """
    root = parse_body(body)
    if root is None:
        return body
    return "".join(root.itertext()).strip()


def extract_field(body: str, path: str) -> Optional[str]:
    """Return the text of the first element matching ``path`` (ElementPath)."""
    root = parse_body(body)
    if root is None:
        return None
    if root.tag == path or path in ("", "."):
        return (root.text or "").strip()
    element = root.find(path)
    if element is None:
        return None
    return (element.text or "").strip()


def body_fields(body: str) -> Dict[str, str]:
    """Flatten an XML body into a {tag: text} dictionary (first occurrence wins)."""
    root = parse_body(body)
    if root is None:
        return {}
    fields: Dict[str, str] = {}
    for element in root.iter():
        if element is root:
            continue
        if element.tag not in fields:
            fields[element.tag] = (element.text or "").strip()
    return fields


class XmlSchema:
    """A minimal XML schema: a root tag plus required/optional child elements.

    The provenance manager (Section 4) enforces that provenance records
    follow a predefined structure; this class provides the validation without
    pulling in a full XSD implementation.
    """

    def __init__(self, root_tag: str, required: List[str], optional: Optional[List[str]] = None):
        self.root_tag = root_tag
        self.required = list(required)
        self.optional = list(optional or [])

    def validate(self, body: str) -> None:
        """Raise :class:`AnnotationError` when ``body`` violates the schema."""
        root = parse_body(body)
        if root is None:
            raise AnnotationError(
                f"body is not well-formed XML (expected <{self.root_tag}> document)"
            )
        if root.tag != self.root_tag:
            raise AnnotationError(
                f"expected root element <{self.root_tag}>, found <{root.tag}>"
            )
        present = {child.tag for child in root}
        missing = [tag for tag in self.required if tag not in present]
        if missing:
            raise AnnotationError(
                f"missing required element(s): {', '.join(missing)}"
            )
        allowed = set(self.required) | set(self.optional)
        unexpected = sorted(tag for tag in present if tag not in allowed)
        if unexpected:
            raise AnnotationError(
                f"unexpected element(s): {', '.join(unexpected)}"
            )

    def build(self, **fields: str) -> str:
        """Render a document conforming to the schema from keyword fields."""
        missing = [tag for tag in self.required if tag not in fields]
        if missing:
            raise AnnotationError(
                f"missing required field(s): {', '.join(missing)}"
            )
        parts = [f"<{self.root_tag}>"]
        for tag in self.required + self.optional:
            if tag in fields:
                parts.append(f"<{tag}>{escape_text(str(fields[tag]))}</{tag}>")
        parts.append(f"</{self.root_tag}>")
        return "".join(parts)
