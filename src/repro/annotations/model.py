"""Annotation data model: annotations, cells, and rectangular regions.

An annotation is extra information linked to data items (Section 3 of the
paper): user comments, lineage/provenance, or system status.  Annotations are
attached to *cells* — (tuple id, column) pairs — possibly many at once, which
is how the multiple granularities of the paper (cell, group of cells, tuple,
column, table) are represented uniformly.

The compact storage scheme of Figure 5 views a table as a two-dimensional
space (columns × tuples) and represents an annotation's extent as a set of
rectangles; :func:`decompose_cells` performs that decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

#: A cell address: (tuple id, column position within the user table schema).
Cell = Tuple[int, int]

#: Category used for ordinary user comments.
CATEGORY_COMMENT = "comment"
#: Category used for provenance/lineage records (Section 4).
CATEGORY_PROVENANCE = "provenance"
#: Category used for system-generated status annotations (outdated items).
CATEGORY_STATUS = "status"


@dataclass(frozen=True)
class Annotation:
    """A single annotation record.

    Annotations are hashable and compared by identity key (annotation table,
    id) so they can live in the per-column sets carried by annotated rows.
    """

    ann_id: int
    annotation_table: str
    body: str
    curator: str = "unknown"
    created_at: datetime = field(default_factory=datetime.now)
    archived: bool = False
    category: str = CATEGORY_COMMENT

    def __hash__(self) -> int:
        return hash((self.annotation_table, self.ann_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Annotation):
            return NotImplemented
        return (self.annotation_table, self.ann_id) == (other.annotation_table, other.ann_id)

    def with_archived(self, archived: bool) -> "Annotation":
        return Annotation(
            ann_id=self.ann_id,
            annotation_table=self.annotation_table,
            body=self.body,
            curator=self.curator,
            created_at=self.created_at,
            archived=archived,
            category=self.category,
        )


@dataclass(frozen=True)
class Region:
    """A rectangle in the (column position, tuple id) plane, inclusive bounds."""

    col_start: int
    col_end: int
    tid_start: int
    tid_end: int

    def __post_init__(self) -> None:
        if self.col_start > self.col_end or self.tid_start > self.tid_end:
            raise ValueError(f"degenerate region {self!r}")

    def contains(self, column: int, tuple_id: int) -> bool:
        return (self.col_start <= column <= self.col_end
                and self.tid_start <= tuple_id <= self.tid_end)

    def cell_count(self) -> int:
        return (self.col_end - self.col_start + 1) * (self.tid_end - self.tid_start + 1)

    def cells(self) -> Iterable[Cell]:
        for tuple_id in range(self.tid_start, self.tid_end + 1):
            for column in range(self.col_start, self.col_end + 1):
                yield (tuple_id, column)


def _contiguous_runs(sorted_values: Sequence[int]) -> List[Tuple[int, int]]:
    """Split a sorted sequence of ints into inclusive (start, end) runs."""
    runs: List[Tuple[int, int]] = []
    start = prev = None
    for value in sorted_values:
        if start is None:
            start = prev = value
            continue
        if value == prev + 1:
            prev = value
            continue
        runs.append((start, prev))
        start = prev = value
    if start is not None:
        runs.append((start, prev))
    return runs


def decompose_cells(cells: Iterable[Cell]) -> List[Region]:
    """Decompose a set of cells into rectangular regions (Figure 5).

    The decomposition groups tuples by the exact set of columns annotated on
    them, then splits both the column set and the tuple-id set into
    contiguous runs.  Coarse-granularity annotations (a whole column, a whole
    tuple, a block of contiguous cells) therefore collapse into a single
    region, which is exactly the storage saving the paper argues for; fully
    scattered cells degrade gracefully to one region per cell.
    """
    by_tuple: Dict[int, Set[int]] = {}
    for tuple_id, column in cells:
        by_tuple.setdefault(tuple_id, set()).add(column)
    # Group tuple ids by their annotated column signature.
    by_signature: Dict[FrozenSet[int], List[int]] = {}
    for tuple_id, columns in by_tuple.items():
        by_signature.setdefault(frozenset(columns), []).append(tuple_id)
    regions: List[Region] = []
    for signature, tuple_ids in by_signature.items():
        column_runs = _contiguous_runs(sorted(signature))
        tuple_runs = _contiguous_runs(sorted(tuple_ids))
        for col_start, col_end in column_runs:
            for tid_start, tid_end in tuple_runs:
                regions.append(Region(col_start, col_end, tid_start, tid_end))
    regions.sort(key=lambda r: (r.tid_start, r.col_start, r.tid_end, r.col_end))
    return regions


def cells_for_tuples(tuple_ids: Iterable[int], num_columns: int) -> Set[Cell]:
    """All cells of whole tuples (tuple-granularity annotation)."""
    return {(tid, col) for tid in tuple_ids for col in range(num_columns)}


def cells_for_columns(columns: Iterable[int], tuple_ids: Iterable[int]) -> Set[Cell]:
    """All cells of whole columns over the given tuples (column granularity)."""
    tids = list(tuple_ids)
    return {(tid, col) for col in columns for tid in tids}


def cells_for_table(tuple_ids: Iterable[int], num_columns: int) -> Set[Cell]:
    """Every cell of the table (table-granularity annotation)."""
    return cells_for_tuples(tuple_ids, num_columns)
