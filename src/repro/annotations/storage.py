"""Annotation linkage storage schemes.

The paper contrasts two ways of recording *which cells an annotation is
attached to*:

* the **naive per-cell scheme** (Figure 3): conceptually one annotation
  column per data column; here realised as one linkage record per
  (tuple, column, annotation) triple, so an annotation over an entire column
  of N tuples costs N records;
* the **compact region scheme** (Figure 5): the table is viewed as a
  two-dimensional space and each annotation stores a small set of rectangles,
  so coarse-granularity annotations cost a single record.

Both schemes persist their linkage records in ordinary heap-backed tables so
that storage size and retrieval I/O are measured through the same buffer-pool
machinery as user data — that is what benchmark E2 compares.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.annotations.model import Cell, Region, decompose_cells
from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.catalog.table import Table
from repro.core.errors import AnnotationError
from repro.types.datatypes import DataType

#: Scheme identifiers accepted by CREATE ANNOTATION TABLE.
SCHEME_NAIVE = "naive"
SCHEME_COMPACT = "compact"


class AnnotationLinkageStore:
    """Interface of a linkage store: maps annotations to the cells they cover."""

    #: subclasses set this to SCHEME_NAIVE or SCHEME_COMPACT
    scheme_name = "abstract"

    def __init__(self, backing: Table):
        self.backing = backing

    # -- writes ------------------------------------------------------------
    def attach(self, ann_id: int, cells: Iterable[Cell]) -> int:
        """Record that annotation ``ann_id`` covers ``cells``.

        Returns the number of linkage records written.
        """
        raise NotImplementedError

    def detach(self, ann_id: int) -> int:
        """Remove every linkage record of ``ann_id``; returns how many."""
        removed = 0
        doomed = [tid for tid, row in self.backing.scan() if row[0] == ann_id]
        for tid in doomed:
            self.backing.delete_row(tid)
            removed += 1
        return removed

    # -- reads -------------------------------------------------------------
    def load_index(self) -> "LinkageIndex":
        """Scan the backing table and build an in-memory lookup index.

        The scan is what costs I/O; the returned index is then probed once
        per (tuple, column) cell during annotation propagation.
        """
        raise NotImplementedError

    def cells_of(self, ann_id: int) -> Set[Cell]:
        """Return every cell covered by ``ann_id`` (used by archive/restore)."""
        raise NotImplementedError

    def annotation_ids(self) -> Set[int]:
        return {row[0] for _, row in self.backing.scan()}

    # -- measurement ---------------------------------------------------------
    def record_count(self) -> int:
        return len(self.backing)

    def num_pages(self) -> int:
        return self.backing.num_pages()


class LinkageIndex:
    """In-memory probe structure built by :meth:`AnnotationLinkageStore.load_index`."""

    def lookup(self, tuple_id: int, column: int) -> Set[int]:
        raise NotImplementedError

    def annotated_tuple_ids(self) -> Set[int]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Naive per-cell scheme (Figure 3)
# ---------------------------------------------------------------------------
class _CellIndex(LinkageIndex):
    def __init__(self, mapping: Dict[Cell, Set[int]]):
        self._mapping = mapping

    def lookup(self, tuple_id: int, column: int) -> Set[int]:
        return self._mapping.get((tuple_id, column), set())

    def annotated_tuple_ids(self) -> Set[int]:
        return {tuple_id for tuple_id, _ in self._mapping}


class NaiveCellStore(AnnotationLinkageStore):
    """One linkage record per (annotation, tuple, column) triple."""

    scheme_name = SCHEME_NAIVE

    @staticmethod
    def backing_schema(name: str) -> TableSchema:
        return TableSchema(name, [
            Column("ann_id", DataType.INTEGER, nullable=False),
            Column("tuple_id", DataType.INTEGER, nullable=False),
            Column("column_pos", DataType.INTEGER, nullable=False),
        ])

    def attach(self, ann_id: int, cells: Iterable[Cell]) -> int:
        written = 0
        for tuple_id, column in sorted(set(cells)):
            self.backing.insert_positional((ann_id, tuple_id, column))
            written += 1
        return written

    def load_index(self) -> _CellIndex:
        mapping: Dict[Cell, Set[int]] = {}
        for _, (ann_id, tuple_id, column) in self.backing.scan():
            mapping.setdefault((tuple_id, column), set()).add(ann_id)
        return _CellIndex(mapping)

    def cells_of(self, ann_id: int) -> Set[Cell]:
        return {
            (tuple_id, column)
            for _, (aid, tuple_id, column) in self.backing.scan()
            if aid == ann_id
        }


# ---------------------------------------------------------------------------
# Compact rectangle scheme (Figure 5)
# ---------------------------------------------------------------------------
class _RegionIndex(LinkageIndex):
    def __init__(self, regions: List[Tuple[Region, int]]):
        self._regions = regions

    def lookup(self, tuple_id: int, column: int) -> Set[int]:
        return {
            ann_id for region, ann_id in self._regions
            if region.contains(column, tuple_id)
        }

    def annotated_tuple_ids(self) -> Set[int]:
        tuple_ids: Set[int] = set()
        for region, _ in self._regions:
            tuple_ids.update(range(region.tid_start, region.tid_end + 1))
        return tuple_ids

    def __len__(self) -> int:
        return len(self._regions)


class CompactRegionStore(AnnotationLinkageStore):
    """One linkage record per rectangular region of the annotation's extent."""

    scheme_name = SCHEME_COMPACT

    @staticmethod
    def backing_schema(name: str) -> TableSchema:
        return TableSchema(name, [
            Column("ann_id", DataType.INTEGER, nullable=False),
            Column("col_start", DataType.INTEGER, nullable=False),
            Column("col_end", DataType.INTEGER, nullable=False),
            Column("tid_start", DataType.INTEGER, nullable=False),
            Column("tid_end", DataType.INTEGER, nullable=False),
        ])

    def attach(self, ann_id: int, cells: Iterable[Cell]) -> int:
        regions = decompose_cells(set(cells))
        for region in regions:
            self.backing.insert_positional((
                ann_id, region.col_start, region.col_end,
                region.tid_start, region.tid_end,
            ))
        return len(regions)

    def load_index(self) -> _RegionIndex:
        regions: List[Tuple[Region, int]] = []
        for _, (ann_id, col_start, col_end, tid_start, tid_end) in self.backing.scan():
            regions.append((Region(col_start, col_end, tid_start, tid_end), ann_id))
        return _RegionIndex(regions)

    def cells_of(self, ann_id: int) -> Set[Cell]:
        cells: Set[Cell] = set()
        for _, (aid, col_start, col_end, tid_start, tid_end) in self.backing.scan():
            if aid != ann_id:
                continue
            cells.update(Region(col_start, col_end, tid_start, tid_end).cells())
        return cells


_SCHEMES = {
    SCHEME_NAIVE: NaiveCellStore,
    SCHEME_COMPACT: CompactRegionStore,
}


def linkage_store_class(scheme: str):
    """The linkage-store class for ``scheme`` (creating no backing table)."""
    try:
        return _SCHEMES[scheme.lower()]
    except KeyError as exc:
        raise AnnotationError(
            f"unknown annotation storage scheme {scheme!r}; expected one of "
            f"{sorted(_SCHEMES)}"
        ) from exc


def create_linkage_store(scheme: str, catalog: SystemCatalog, backing_name: str) -> AnnotationLinkageStore:
    """Create the backing table for ``scheme`` and return its linkage store."""
    store_cls = linkage_store_class(scheme)
    backing = catalog.create_table(store_cls.backing_schema(backing_name))
    return store_cls(backing)
