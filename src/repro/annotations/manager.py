"""The annotation manager: bdbms's first-class treatment of annotations.

Responsibilities (paper Sections 3.1–3.4):

* ``CREATE / DROP ANNOTATION TABLE`` — a user relation may have several
  annotation tables attached to it (e.g. one for provenance, one for user
  comments), which is how annotations are *categorized at the storage level*;
* ``ADD ANNOTATION`` at any granularity (cell, group of cells, tuple, column,
  table) with either the naive or the compact storage scheme;
* ``ARCHIVE / RESTORE ANNOTATION`` with an optional time range — archived
  annotations are retained but excluded from propagation;
* building the propagation index used by the annotated query operators.
"""

from __future__ import annotations

from datetime import datetime
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.annotations.model import (
    Annotation,
    CATEGORY_COMMENT,
    Cell,
    cells_for_columns,
    cells_for_tuples,
)
from repro.annotations.storage import (
    SCHEME_COMPACT,
    AnnotationLinkageStore,
    create_linkage_store,
    linkage_store_class,
)
from repro.annotations.xml_utils import wrap_annotation, is_xml
from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.catalog.table import Table
from repro.core.errors import AnnotationError
from repro.types.datatypes import DataType


def _bodies_schema(name: str) -> TableSchema:
    return TableSchema(name, [
        Column("ann_id", DataType.INTEGER, primary_key=True),
        Column("body", DataType.XML, nullable=False),
        Column("curator", DataType.TEXT, nullable=False),
        Column("created_at", DataType.TIMESTAMP, nullable=False),
        Column("archived", DataType.BOOLEAN, nullable=False, default=False),
        Column("category", DataType.TEXT, nullable=False, default=CATEGORY_COMMENT),
    ])


class AnnotationTable:
    """One annotation table attached to a user relation."""

    def __init__(self, name: str, user_table: str, bodies: Table,
                 linkage: AnnotationLinkageStore, category: str = CATEGORY_COMMENT):
        self.name = name
        self.user_table = user_table
        self.bodies = bodies
        self.linkage = linkage
        self.default_category = category
        self._next_ann_id = 0

    @property
    def qualified_name(self) -> str:
        return f"{self.user_table}.{self.name}"

    @property
    def scheme(self) -> str:
        return self.linkage.scheme_name

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add(self, body: str, cells: Iterable[Cell], curator: str = "unknown",
            category: Optional[str] = None,
            created_at: Optional[datetime] = None) -> Annotation:
        cells = set(cells)
        if not cells:
            raise AnnotationError(
                f"annotation on {self.qualified_name} targets no cells"
            )
        if not is_xml(body):
            body = wrap_annotation(body)
        ann_id = self._next_ann_id
        self._next_ann_id += 1
        created = created_at or datetime.now()
        chosen_category = category or self.default_category
        self.bodies.insert_positional(
            (ann_id, body, curator, created, False, chosen_category)
        )
        self.linkage.attach(ann_id, cells)
        return Annotation(
            ann_id=ann_id,
            annotation_table=self.qualified_name,
            body=body,
            curator=curator,
            created_at=created,
            archived=False,
            category=chosen_category,
        )

    def set_archived(self, ann_id: int, archived: bool) -> None:
        tuple_id = self._tuple_id_of(ann_id)
        self.bodies.update_row(tuple_id, {"archived": archived})

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, ann_id: int) -> Annotation:
        tuple_id = self._tuple_id_of(ann_id)
        return self._annotation_from_row(self.bodies.read_row(tuple_id))

    def annotations(self, include_archived: bool = False) -> List[Annotation]:
        result = []
        for _, row in self.bodies.scan():
            annotation = self._annotation_from_row(row)
            if annotation.archived and not include_archived:
                continue
            result.append(annotation)
        return result

    def cells_of(self, ann_id: int) -> Set[Cell]:
        return self.linkage.cells_of(ann_id)

    def annotation_count(self, include_archived: bool = True) -> int:
        if include_archived:
            return len(self.bodies)
        return len(self.annotations(include_archived=False))

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def linkage_record_count(self) -> int:
        return self.linkage.record_count()

    def storage_pages(self) -> int:
        return self.bodies.num_pages() + self.linkage.num_pages()

    # ------------------------------------------------------------------
    def _tuple_id_of(self, ann_id: int) -> int:
        tuple_id = self.bodies.lookup_primary_key((ann_id,))
        if tuple_id is None:
            raise AnnotationError(
                f"annotation table {self.qualified_name} has no annotation {ann_id}"
            )
        return tuple_id

    def _annotation_from_row(self, row: Sequence) -> Annotation:
        ann_id, body, curator, created_at, archived, category = row
        return Annotation(
            ann_id=ann_id,
            annotation_table=self.qualified_name,
            body=body,
            curator=curator,
            created_at=created_at,
            archived=bool(archived),
            category=category,
        )


class PropagationIndex:
    """Probe structure used by annotated scans.

    Combines, for one user table, the linkage indexes of every requested
    annotation table plus the annotation records themselves.  ``lookup``
    returns the live (non-archived unless requested) annotations attached to
    one cell.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[object, Dict[int, Annotation]]] = []

    def add_table(self, linkage_index, annotations: Dict[int, Annotation]) -> None:
        self._entries.append((linkage_index, annotations))

    def lookup(self, tuple_id: int, column: int) -> Set[Annotation]:
        found: Set[Annotation] = set()
        for linkage_index, annotations in self._entries:
            for ann_id in linkage_index.lookup(tuple_id, column):
                annotation = annotations.get(ann_id)
                if annotation is not None:
                    found.add(annotation)
        return found

    def is_empty(self) -> bool:
        return not self._entries


class AnnotationManager:
    """Registry and operations over every annotation table in the database."""

    def __init__(self, catalog: SystemCatalog):
        self.catalog = catalog
        self._tables: Dict[Tuple[str, str], AnnotationTable] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_annotation_table(self, user_table: str, name: str,
                                scheme: str = SCHEME_COMPACT,
                                category: str = CATEGORY_COMMENT) -> AnnotationTable:
        if not self.catalog.has_table(user_table):
            raise AnnotationError(
                f"cannot annotate unknown table {user_table!r}"
            )
        key = (user_table.lower(), name.lower())
        if key in self._tables:
            raise AnnotationError(
                f"annotation table {user_table}.{name} already exists"
            )
        bodies_name = f"__ann_{user_table}_{name}".lower()
        linkage_name = f"__annlink_{user_table}_{name}".lower()
        bodies = self.catalog.create_table(_bodies_schema(bodies_name))
        linkage = create_linkage_store(scheme, self.catalog, linkage_name)
        table = AnnotationTable(name, self.catalog.table(user_table).name,
                                bodies, linkage, category)
        self._tables[key] = table
        journal = getattr(self.catalog, "journal", None)
        if journal is not None:
            journal.note_ann_create(table.user_table, name,
                                    linkage.scheme_name, category)
        return table

    def drop_annotation_table(self, user_table: str, name: str) -> None:
        key = (user_table.lower(), name.lower())
        if key not in self._tables:
            raise AnnotationError(
                f"annotation table {user_table}.{name} does not exist"
            )
        table = self._tables.pop(key)
        journal = getattr(self.catalog, "journal", None)
        if journal is not None:
            journal.note_ann_drop(user_table, name)
        self.catalog.drop_table(table.bodies.name)
        self.catalog.drop_table(table.linkage.backing.name)

    def drop_all_for(self, user_table: str) -> None:
        """Drop every annotation table attached to ``user_table`` (DROP TABLE)."""
        for table in list(self.tables_for(user_table)):
            self.drop_annotation_table(user_table, table.name)

    # ------------------------------------------------------------------
    # Crash recovery (see repro.core.transactions)
    # ------------------------------------------------------------------
    def register_recovered(self, user_table: str, name: str, scheme: str,
                           category: str = CATEGORY_COMMENT) -> AnnotationTable:
        """Re-attach an annotation table whose backing tables already exist.

        WAL replay recreates the bodies and linkage tables through their own
        ``create_table`` / ``row_insert`` records; this rebuilds only the
        registry entry on top of them (the inverse of what
        :meth:`create_annotation_table` would do, which would try — and fail
        — to create the backing tables again).
        """
        bodies_name = f"__ann_{user_table}_{name}".lower()
        linkage_name = f"__annlink_{user_table}_{name}".lower()
        linkage = linkage_store_class(scheme)(self.catalog.table(linkage_name))
        table = AnnotationTable(name, self.catalog.table(user_table).name,
                                self.catalog.table(bodies_name), linkage,
                                category)
        self._tables[(user_table.lower(), name.lower())] = table
        return table

    def forget(self, user_table: str, name: str) -> None:
        """Drop only the registry entry (undo/replay of DDL); tolerant."""
        self._tables.pop((user_table.lower(), name.lower()), None)

    def finish_recovery(self) -> None:
        """Fix up per-table annotation-id counters after a WAL replay.

        Annotation rows are replayed record-by-record after the registry
        entry is re-attached, so the next-id watermark must be derived from
        the recovered bodies once the whole log has been applied.
        """
        for table in self._tables.values():
            ids = [row[0] for _, row in table.bodies.scan()]
            table._next_ann_id = max(ids) + 1 if ids else 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def has(self, user_table: str, name: str) -> bool:
        return (user_table.lower(), name.lower()) in self._tables

    def get(self, user_table: str, name: str) -> AnnotationTable:
        key = (user_table.lower(), name.lower())
        try:
            return self._tables[key]
        except KeyError as exc:
            raise AnnotationError(
                f"annotation table {user_table}.{name} does not exist"
            ) from exc

    def tables_for(self, user_table: str) -> List[AnnotationTable]:
        return [
            table for (owner, _), table in sorted(self._tables.items())
            if owner == user_table.lower()
        ]

    def resolve(self, spec: str, default_user_table: Optional[str] = None) -> AnnotationTable:
        """Resolve ``User.Ann`` or bare ``Ann`` (relative to a user table)."""
        if "." in spec:
            user_table, name = spec.split(".", 1)
            return self.get(user_table, name)
        if default_user_table is not None and self.has(default_user_table, spec):
            return self.get(default_user_table, spec)
        # Fall back to a unique match across all user tables.
        matches = [
            table for (_, ann_name), table in self._tables.items()
            if ann_name == spec.lower()
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise AnnotationError(f"annotation table {spec!r} does not exist")
        raise AnnotationError(
            f"annotation table name {spec!r} is ambiguous; qualify it as "
            f"UserTable.{spec}"
        )

    # ------------------------------------------------------------------
    # Cell helpers (granularities)
    # ------------------------------------------------------------------
    def cells_for(self, user_table: str, tuple_ids: Optional[Iterable[int]] = None,
                  columns: Optional[Iterable[str]] = None) -> Set[Cell]:
        """Build a cell set at the requested granularity.

        * both ``tuple_ids`` and ``columns`` given — a block of cells,
        * only ``tuple_ids`` — whole tuples,
        * only ``columns`` — whole columns (over all current tuples),
        * neither — the whole table.
        """
        table = self.catalog.table(user_table)
        schema = table.schema
        all_tuple_ids = table.tuple_ids
        if tuple_ids is None:
            tuple_ids = all_tuple_ids
        tuple_ids = list(tuple_ids)
        if columns is None:
            return cells_for_tuples(tuple_ids, len(schema))
        positions = [schema.column_position(column) for column in columns]
        return cells_for_columns(positions, tuple_ids)

    # ------------------------------------------------------------------
    # DML-level operations
    # ------------------------------------------------------------------
    def add_annotation(self, annotation_tables: Sequence[str], body: str,
                       cells: Iterable[Cell], curator: str = "unknown",
                       category: Optional[str] = None,
                       user_table: Optional[str] = None,
                       created_at: Optional[datetime] = None) -> List[Annotation]:
        """Add one annotation value to every named annotation table."""
        added = []
        cells = set(cells)
        for spec in annotation_tables:
            table = self.resolve(spec, user_table)
            added.append(table.add(body, cells, curator, category, created_at))
        return added

    def archive(self, annotation_tables: Sequence[str], cells: Iterable[Cell],
                time_from: Optional[datetime] = None,
                time_to: Optional[datetime] = None,
                user_table: Optional[str] = None) -> List[Annotation]:
        """Archive annotations intersecting ``cells`` within the time range."""
        return self._set_archived(annotation_tables, cells, time_from, time_to,
                                  user_table, archived=True)

    def restore(self, annotation_tables: Sequence[str], cells: Iterable[Cell],
                time_from: Optional[datetime] = None,
                time_to: Optional[datetime] = None,
                user_table: Optional[str] = None) -> List[Annotation]:
        """Restore previously archived annotations intersecting ``cells``."""
        return self._set_archived(annotation_tables, cells, time_from, time_to,
                                  user_table, archived=False)

    def _set_archived(self, annotation_tables: Sequence[str], cells: Iterable[Cell],
                      time_from: Optional[datetime], time_to: Optional[datetime],
                      user_table: Optional[str], archived: bool) -> List[Annotation]:
        target_cells = set(cells)
        changed: List[Annotation] = []
        for spec in annotation_tables:
            table = self.resolve(spec, user_table)
            for annotation in table.annotations(include_archived=True):
                if annotation.archived == archived:
                    continue
                if time_from is not None and annotation.created_at < time_from:
                    continue
                if time_to is not None and annotation.created_at > time_to:
                    continue
                if target_cells and not (table.cells_of(annotation.ann_id) & target_cells):
                    continue
                table.set_archived(annotation.ann_id, archived)
                changed.append(annotation.with_archived(archived))
        return changed

    # ------------------------------------------------------------------
    # Propagation support
    # ------------------------------------------------------------------
    def propagation_index(self, user_table: str,
                          annotation_tables: Optional[Sequence[str]] = None,
                          include_archived: bool = False,
                          categories: Optional[Set[str]] = None) -> PropagationIndex:
        """Build the probe index used by an annotated scan of ``user_table``.

        ``annotation_tables`` of ``None`` selects every annotation table
        attached to the user table; an explicit list selects only those (the
        A-SQL ``ANNOTATION(S1, S2, ...)`` clause).  ``categories`` optionally
        restricts propagation to annotation categories (e.g. only provenance).
        """
        index = PropagationIndex()
        if annotation_tables is None:
            tables = self.tables_for(user_table)
        else:
            tables = [self.resolve(spec, user_table) for spec in annotation_tables]
        for table in tables:
            annotations = {
                annotation.ann_id: annotation
                for annotation in table.annotations(include_archived)
                if categories is None or annotation.category in categories
            }
            index.add_table(table.linkage.load_index(), annotations)
        return index
