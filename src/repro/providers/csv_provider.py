"""CSV table provider: a delimited text file as a foreign table.

Schema discovery reads the header row for column names and infers types
from a bounded sample (INTEGER if every sampled value parses as an int,
FLOAT if every value is numeric, TEXT otherwise; empty fields are NULL).

The scan applies the pushdown contract where it pays the most: with
filters pushed, only the *filter* columns are decoded per row, and the
remaining projected columns are decoded for surviving rows only — on a
selective predicate over a wide file that skips the bulk of the decode
work.  The ``pushdown false`` ATTACH option disables provider-side
filtering and projection (full decode + full transfer), which is what the
``foreign_scan`` benchmark uses as its baseline.

Options: ``delimiter`` (default ``,``), ``header`` (default true — when
false, columns are named ``c1..cN``), ``sample`` (type-inference row
budget, default 100), ``pushdown`` (default true).
"""

from __future__ import annotations

import csv
import io
import itertools
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.catalog.schema import Column, TableSchema
from repro.core.errors import OperationalError
from repro.executor.row import RowBatch
from repro.providers.base import (DEFAULT_BATCH_SIZE, ProviderStatistics,
                                  TableProvider, compile_pushed_filters,
                                  filter_column_names, option_bool,
                                  option_int)
from repro.sql import ast
from repro.types.datatypes import DataType


def _convert_integer(text: str) -> Any:
    return int(text)


def _convert_float(text: str) -> Any:
    return float(text)


def _convert_text(text: str) -> Any:
    return text


_CONVERTERS = {
    DataType.INTEGER: _convert_integer,
    DataType.FLOAT: _convert_float,
    DataType.TEXT: _convert_text,
}


def _looks_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def _looks_float(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


class CsvTableProvider(TableProvider):
    """Foreign table over a local CSV file."""

    provider_name = "csv"
    supports_write = True

    def __init__(self, uri: str, options: Optional[Dict[str, Any]] = None):
        super().__init__(uri, options)
        self.delimiter = str(self.options.get("delimiter", ","))
        self.has_header = option_bool(self.options, "header", True)
        self.sample_rows = option_int(self.options, "sample", 100)
        self.pushdown = option_bool(self.options, "pushdown", True)

    # ------------------------------------------------------------------
    def _open(self) -> io.TextIOWrapper:
        try:
            return open(self.uri, "r", newline="", encoding="utf-8")
        except OSError as exc:
            raise OperationalError(
                f"csv provider: cannot open {self.uri!r}: {exc}") from exc

    def discover_schema(self) -> TableSchema:
        with self._open() as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            try:
                first = next(reader)
            except StopIteration:
                raise OperationalError(
                    f"csv provider: {self.uri!r} is empty") from None
            except csv.Error as exc:
                raise OperationalError(
                    f"csv provider: malformed CSV in {self.uri!r}: "
                    f"{exc}") from exc
            if self.has_header:
                names = [name.strip() or f"c{i + 1}"
                         for i, name in enumerate(first)]
                sample_seed: List[List[str]] = []
            else:
                names = [f"c{i + 1}" for i in range(len(first))]
                sample_seed = [first]
            dtypes = self._infer_types(reader, len(names), sample_seed)
        return TableSchema(os.path.basename(self.uri) or "csv", [
            Column(name, dtype) for name, dtype in zip(names, dtypes)
        ])

    def _infer_types(self, reader, arity: int,
                     seed: List[List[str]]) -> List[DataType]:
        could_be_int = [True] * arity
        could_be_float = [True] * arity
        saw_value = [False] * arity
        sampled = 0
        # Lazy chain: never read past the sample budget (the file may be
        # arbitrarily large, and discovery runs before every scan).
        for fields in itertools.chain(seed, reader):
            if sampled >= self.sample_rows:
                break
            sampled += 1
            for position in range(min(arity, len(fields))):
                text = fields[position]
                if text == "":
                    continue
                saw_value[position] = True
                if could_be_int[position] and not _looks_int(text):
                    could_be_int[position] = False
                if could_be_float[position] and not _looks_float(text):
                    could_be_float[position] = False
        dtypes: List[DataType] = []
        for position in range(arity):
            if not saw_value[position]:
                dtypes.append(DataType.TEXT)
            elif could_be_int[position]:
                dtypes.append(DataType.INTEGER)
            elif could_be_float[position]:
                dtypes.append(DataType.FLOAT)
            else:
                dtypes.append(DataType.TEXT)
        return dtypes

    # ------------------------------------------------------------------
    @staticmethod
    def _raw_equality(conjunct: ast.Expression,
                      position_of: Dict[str, int],
                      schema: TableSchema,
                      qualifier: Optional[str]) -> Optional[tuple]:
        """``(position, text)`` when the conjunct is ``<TEXT column> =
        <string literal>`` — checkable on the raw, undecoded field.

        Conservative by construction: for a TEXT column the decoded value
        IS the raw field (with ``""`` decoding to NULL, which an equality
        never matches), so the raw comparison drops exactly the rows the
        engine's re-check would drop.
        """
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
            left, right = right, left
        if not (isinstance(left, ast.ColumnRef)
                and isinstance(right, ast.Literal)):
            return None
        if left.table is not None and qualifier is not None \
                and left.table.lower() != qualifier.lower():
            return None
        if not isinstance(right.value, str) or right.value == "":
            return None
        position = position_of.get(left.name.lower())
        if position is None \
                or schema.columns[position].dtype is not DataType.TEXT:
            return None
        return (position, right.value)

    def scan_batches(self,
                     columns: Optional[Sequence[str]] = None,
                     pushed_filters: Sequence[ast.Expression] = (),
                     limit: Optional[int] = None,
                     *,
                     qualifier: Optional[str] = None,
                     batch_size: int = DEFAULT_BATCH_SIZE,
                     ) -> Iterator[RowBatch]:
        schema = self.discover_schema()
        names = schema.column_names
        position_of = {name.lower(): i for i, name in enumerate(names)}
        converters: List[Callable[[str], Any]] = [
            _CONVERTERS.get(column.dtype, _convert_text)
            for column in schema.columns
        ]

        out_names = list(columns) if columns else list(names)
        out_positions: List[int] = []
        for name in out_names:
            position = position_of.get(name.lower())
            if position is None:
                raise OperationalError(
                    f"csv provider: {self.uri!r} has no column {name!r}")
            out_positions.append(position)

        predicate = None
        filter_positions: List[int] = []
        raw_equalities: List[tuple] = []
        if pushed_filters and self.pushdown:
            # Equality against a string literal on a TEXT column is checked
            # on the *raw* field, before any decoding — on a selective
            # predicate this drops the bulk of the rows at C-level string
            # comparison cost.  Everything else goes through the compiled
            # general predicate over a decoded probe tuple.
            general: List[ast.Expression] = []
            for conjunct in pushed_filters:
                raw = self._raw_equality(conjunct, position_of,
                                         schema, qualifier)
                if raw is not None:
                    raw_equalities.append(raw)
                else:
                    general.append(conjunct)
            if general:
                needed = filter_column_names(general, names)
                if needed is not None:
                    predicate = compile_pushed_filters(
                        needed, general, qualifier)
                    filter_positions = [position_of[name] for name in needed]
                if predicate is None:
                    filter_positions = []

        def survives_raw(fields: Sequence[str]) -> bool:
            for position, text in raw_equalities:
                if fields[position] != text:
                    return False
            return True

        def decode(fields: Sequence[str], position: int,
                   line: int) -> Any:
            text = fields[position]
            if text == "":
                return None
            try:
                return converters[position](text)
            except ValueError as exc:
                raise OperationalError(
                    f"csv provider: row {line} of {self.uri!r}: cannot "
                    f"read {text!r} as "
                    f"{schema.columns[position].dtype.value}") from exc

        def batches() -> Iterator[RowBatch]:
            remaining = limit
            pending: List[tuple] = []
            arity = len(names)
            # The overwhelmingly common pushdown shape is one equality on a
            # TEXT column; unpack it so the hot loop pays one C-level string
            # compare per row instead of a function call.
            single_raw = raw_equalities[0] if len(raw_equalities) == 1 else None
            with self._open() as handle:
                reader = csv.reader(handle, delimiter=self.delimiter)
                try:
                    for line, fields in enumerate(reader, start=1):
                        if line == 1 and self.has_header:
                            continue
                        if remaining is not None and remaining <= 0:
                            break
                        if len(fields) != arity:
                            raise OperationalError(
                                f"csv provider: row {line} of "
                                f"{self.uri!r} has {len(fields)} fields, "
                                f"expected {arity} (truncated or "
                                f"malformed file)")
                        if single_raw is not None:
                            if fields[single_raw[0]] != single_raw[1]:
                                continue
                        elif raw_equalities and not survives_raw(fields):
                            continue
                        if predicate is not None:
                            probe = tuple(decode(fields, position, line)
                                          for position in filter_positions)
                            if not predicate(probe):
                                continue
                        pending.append(tuple(
                            decode(fields, position, line)
                            for position in out_positions))
                        if remaining is not None:
                            remaining -= 1
                        if len(pending) >= batch_size:
                            yield RowBatch(pending)
                            pending = []
                except csv.Error as exc:
                    raise OperationalError(
                        f"csv provider: malformed CSV in {self.uri!r}: "
                        f"{exc}") from exc
            if pending:
                yield RowBatch(pending)

        return batches()

    # ------------------------------------------------------------------
    def statistics(self) -> Optional[ProviderStatistics]:
        """Estimate the row count from the file size and a sampled mean
        line width — one sample pass, no full scan."""
        try:
            size = os.path.getsize(self.uri)
        except OSError:
            return None
        if size == 0:
            return ProviderStatistics(row_count=0.0)
        sampled = 0
        sampled_bytes = 0
        header_bytes = 0
        with self._open() as handle:
            for line_number, line in enumerate(handle, start=1):
                if line_number == 1 and self.has_header:
                    header_bytes = len(line.encode("utf-8"))
                    continue
                sampled += 1
                sampled_bytes += len(line.encode("utf-8"))
                if sampled >= self.sample_rows:
                    break
        if sampled == 0 or sampled_bytes == 0:
            return ProviderStatistics(row_count=0.0)
        mean_width = sampled_bytes / sampled
        return ProviderStatistics(
            row_count=max(float(sampled), (size - header_bytes) / mean_width))

    def write_rows(self, rows) -> int:
        """Append pre-ordered full rows to the file (NULL -> empty field)."""
        written = 0
        try:
            with open(self.uri, "a", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle, delimiter=self.delimiter)
                for row in rows:
                    writer.writerow(
                        ["" if value is None else value for value in row])
                    written += 1
        except OSError as exc:
            raise OperationalError(
                f"csv provider: cannot append to {self.uri!r}: {exc}") from exc
        return written
