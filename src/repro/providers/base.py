"""Pluggable table providers: foreign tables behind a uniform scan API.

A :class:`TableProvider` adapts an external data source — a CSV file, a
JSONL file, another repro database — to the engine's scan contract: it
discovers a :class:`~repro.catalog.schema.TableSchema`, and it yields
:class:`~repro.executor.row.RowBatch`es honoring an optional column
projection, a list of pushed-down filter conjuncts, and a row limit.
Providers may additionally report statistics to the cost model and accept
writes; both are optional.

Providers register by name in a :class:`ProviderRegistry`.  Registration is
entry-point-style: built-ins register at import time via
:func:`register_provider`, and external packages can expose a factory under
the ``repro.table_providers`` entry-point group, which the registry loads
lazily on first lookup.  The registry is the seam a later ``remote-repro``
provider (scatter-gather across shards) plugs into without touching the
planner or executor.

The pushdown contract is *advisory*: a provider may apply any subset of the
pushed filters (including none) and may over-deliver columns; the executor
always re-checks the full conjunct list on top of the foreign scan, so a
lazy provider is slower but never wrong.  What a provider must never do is
drop rows that match or invent rows that do not.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.catalog.schema import TableSchema
from repro.core.errors import NotSupportedError, OperationalError
from repro.executor.row import OutputSchema, RowBatch
from repro.planner.expressions import Evaluator
from repro.planner.planner import referenced_columns
from repro.sql import ast

#: Default batch size for provider scans when the engine does not pass one.
DEFAULT_BATCH_SIZE = 256


@dataclass
class ProviderStatistics:
    """Optional statistics a provider reports to the cost model.

    ``row_count`` feeds the scan cardinality estimate; ``distinct`` maps
    lower-cased column names to number-of-distinct-values estimates for
    join sizing.  Missing pieces fall back to the planner's defaults.
    """

    row_count: Optional[float] = None
    distinct: Dict[str, float] = field(default_factory=dict)


def option_bool(options: Dict[str, Any], key: str, default: bool) -> bool:
    """Read a boolean ATTACH option tolerantly (bool, 0/1, 'true'/'false')."""
    value = options.get(key, default)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "yes", "on", "1"):
            return True
        if lowered in ("false", "f", "no", "off", "0"):
            return False
    raise OperationalError(f"invalid boolean value {value!r} for option {key!r}")


def option_int(options: Dict[str, Any], key: str, default: int) -> int:
    value = options.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise OperationalError(
            f"invalid integer value {value!r} for option {key!r}") from exc


def compile_pushed_filters(
        names: Sequence[str],
        filters: Sequence[ast.Expression],
        qualifier: Optional[str] = None,
) -> Optional[Callable[[Tuple[Any, ...]], bool]]:
    """Compile pushed conjuncts into one predicate over value tuples.

    ``names`` fixes the tuple layout the predicate reads (any subset of the
    provider's columns, in any order).  Conjuncts that fail to compile —
    e.g. referencing a column outside ``names`` — are silently skipped:
    the executor re-checks the full list, so skipping only costs transfer,
    never correctness.  Returns ``None`` when nothing could be compiled.
    """
    if not filters:
        return None
    schema = OutputSchema.from_names(list(names), qualifier)
    evaluator = Evaluator(schema)
    compiled = []
    for conjunct in filters:
        try:
            compiled.append(evaluator.compile_values(conjunct))
        except Exception:
            continue
    if not compiled:
        return None
    if len(compiled) == 1:
        single = compiled[0]
        return lambda values: bool(single(values))
    return lambda values: all(bool(check(values)) for check in compiled)


def filter_column_names(filters: Sequence[ast.Expression],
                        known: Iterable[str]) -> Optional[List[str]]:
    """Lower-cased column names the pushed filters read, or ``None`` when
    any reference falls outside ``known`` (caller should skip pushdown)."""
    known_lower = {name.lower() for name in known}
    needed: List[str] = []
    for conjunct in filters:
        for ref in referenced_columns(conjunct):
            lowered = ref.name.lower()
            if lowered not in known_lower:
                return None
            if lowered not in needed:
                needed.append(lowered)
    return needed


class TableProvider(ABC):
    """Adapter between one external data source and the engine's scan API.

    Concrete providers implement :meth:`discover_schema` and
    :meth:`scan_batches`; :meth:`statistics`, :meth:`write_rows`, and
    :meth:`close` have safe defaults.  A provider instance is owned by one
    attached table and may cache open handles; it must tolerate
    :meth:`close` being called more than once.
    """

    #: Registry name of the provider (``csv``, ``jsonl``, ``repro``, ...).
    provider_name: str = "abstract"
    #: Whether :meth:`write_rows` is implemented.
    supports_write: bool = False

    def __init__(self, uri: str, options: Optional[Dict[str, Any]] = None):
        self.uri = uri
        self.options = dict(options or {})

    # ------------------------------------------------------------------
    @abstractmethod
    def discover_schema(self) -> TableSchema:
        """Inspect the source and return its relational schema.

        Called at ATTACH time (the result is persisted in the catalog) and
        again before scans to detect drift.  Must raise
        :class:`OperationalError` when the source is missing or unreadable.
        """

    @abstractmethod
    def scan_batches(self,
                     columns: Optional[Sequence[str]] = None,
                     pushed_filters: Sequence[ast.Expression] = (),
                     limit: Optional[int] = None,
                     *,
                     qualifier: Optional[str] = None,
                     batch_size: int = DEFAULT_BATCH_SIZE,
                     ) -> Iterator[RowBatch]:
        """Yield matching rows as :class:`RowBatch`es.

        ``columns`` projects the output (schema order of the subset is the
        tuple layout; ``None`` means all columns); ``pushed_filters`` are
        single-table conjuncts the provider *may* apply at the source;
        ``limit`` caps the number of rows produced *after* filtering.
        ``qualifier`` is the attachment alias, needed only to resolve
        qualified column references inside pushed filters.
        """

    # ------------------------------------------------------------------
    def statistics(self) -> Optional[ProviderStatistics]:
        """Source statistics for the cost model, or ``None`` for defaults."""
        return None

    def write_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows to the source; returns the count written."""
        raise NotSupportedError(
            f"table provider {self.provider_name!r} is read-only")

    def close(self) -> None:
        """Release any handles held open by the provider."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.uri!r})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
#: Entry-point group external packages use to ship providers.
ENTRY_POINT_GROUP = "repro.table_providers"

ProviderFactory = Callable[..., TableProvider]


class ProviderRegistry:
    """Name -> factory mapping for table providers.

    Thread-safe; lookups lazily merge entry-point registrations so a
    provider shipped by an installed package (``repro.table_providers``
    group) is usable by name in ``ATTACH ... (TYPE <name>)`` without any
    import on the caller's side.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, ProviderFactory] = {}
        self._lock = threading.Lock()
        self._entry_points_loaded = False

    def register(self, name: str, factory: ProviderFactory,
                 replace: bool = False) -> None:
        key = name.lower()
        with self._lock:
            if not replace and key in self._factories:
                raise OperationalError(
                    f"table provider {name!r} is already registered")
            self._factories[key] = factory

    def unregister(self, name: str) -> None:
        with self._lock:
            self._factories.pop(name.lower(), None)

    def names(self) -> List[str]:
        self._load_entry_points()
        with self._lock:
            return sorted(self._factories)

    def is_registered(self, name: str) -> bool:
        self._load_entry_points()
        with self._lock:
            return name.lower() in self._factories

    def create(self, name: str, uri: str,
               options: Optional[Dict[str, Any]] = None) -> TableProvider:
        self._load_entry_points()
        with self._lock:
            factory = self._factories.get(name.lower())
        if factory is None:
            known = ", ".join(self.names()) or "<none>"
            raise OperationalError(
                f"unknown table provider type {name!r} "
                f"(registered providers: {known})")
        return factory(uri, dict(options or {}))

    # ------------------------------------------------------------------
    def _load_entry_points(self) -> None:
        if self._entry_points_loaded:
            return
        self._entry_points_loaded = True
        try:
            from importlib import metadata
        except ImportError:  # pragma: no cover - py3.7 fallback
            return
        try:
            entry_points = metadata.entry_points()
        except Exception:  # pragma: no cover - defensive
            return
        if hasattr(entry_points, "select"):
            selected = entry_points.select(group=ENTRY_POINT_GROUP)
        else:  # pragma: no cover - pre-3.10 dict API
            selected = entry_points.get(ENTRY_POINT_GROUP, [])
        for entry_point in selected:  # pragma: no cover - env-dependent
            try:
                self.register(entry_point.name, entry_point.load())
            except Exception:
                continue


#: Process-wide default registry; built-in providers register here on import
#: of :mod:`repro.providers`.
registry = ProviderRegistry()


def register_provider(name: str, factory: Optional[ProviderFactory] = None,
                      replace: bool = False):
    """Register a provider factory, usable directly or as a class decorator:

    ``register_provider("csv", CsvTableProvider)`` or::

        @register_provider("csv")
        class CsvTableProvider(TableProvider): ...
    """
    if factory is not None:
        registry.register(name, factory, replace=replace)
        return factory

    def decorator(cls: ProviderFactory) -> ProviderFactory:
        registry.register(name, cls, replace=replace)
        return cls

    return decorator
