"""The foreign-table manager: ATTACH/DETACH state, recovery, and scans.

Mirrors the role :class:`~repro.index.manager.IndexManager` plays for
secondary indexes: it owns the attached-table descriptors next to the
system catalog, journals attach/detach through the transaction manager so
they are redo-logged in the WAL and survive a reopen, and bumps the
catalog's schema version on every change so cached plans touching foreign
tables invalidate like they do for DDL.

Provider instances are created lazily where possible: WAL recovery only
re-registers descriptors (the persisted schema travels in the redo record),
so recovering a database whose CSV file has since vanished succeeds — the
scan, not the reopen, raises the typed :class:`OperationalError`.  Before
every scan the live source schema is re-discovered and compared against
the attached schema; any drift (renamed/retyped/reordered columns) raises
instead of silently mis-mapping positions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.catalog.schema import TableSchema
from repro.core.errors import BdbmsError, CatalogError, OperationalError
from repro.executor.row import BatchedRows, OutputSchema, RowBatch
from repro.providers import base as providers_base
from repro.providers.base import ProviderRegistry, TableProvider
from repro.sql import ast


@dataclass
class AttachedTable:
    """Catalog-side descriptor of one attached foreign table."""

    name: str
    uri: str
    provider_type: str
    options: Dict[str, Any] = field(default_factory=dict)
    #: Source schema captured at ATTACH time (or from the WAL on recovery);
    #: scans verify the live source still matches before trusting positions.
    schema: Optional[TableSchema] = None
    #: Lazily created provider instance serving this table's scans.
    provider: Optional[TableProvider] = None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "uri": self.uri,
            "provider": self.provider_type,
            "options": dict(self.options),
            "columns": [] if self.schema is None else [
                (column.name, column.dtype.value)
                for column in self.schema.columns],
        }


class ForeignTableManager:
    """Registry of attached foreign tables for one database/engine."""

    def __init__(self, catalog, registry: Optional[ProviderRegistry] = None):
        self.catalog = catalog
        self.registry = registry or providers_base.registry
        #: Transaction manager used to journal attach/detach; wired by the
        #: engine/database after construction (same pattern as
        #: ``catalog.journal``).
        self.journal = None
        self._tables: Dict[str, AttachedTable] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def table(self, name: str) -> AttachedTable:
        with self._lock:
            entry = self._tables.get(name.lower())
        if entry is None:
            raise CatalogError(f"no attached foreign table {name!r}")
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(entry.name for entry in self._tables.values())

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            entries = sorted(self._tables.values(), key=lambda e: e.name)
        return [entry.describe() for entry in entries]

    # ------------------------------------------------------------------
    # ATTACH / DETACH
    # ------------------------------------------------------------------
    def attach(self, name: str, uri: str, provider_type: str,
               options: Optional[Dict[str, Any]] = None) -> AttachedTable:
        """Create the provider, capture its schema, and register the table."""
        options = dict(options or {})
        with self._lock:
            if name.lower() in self._tables:
                raise CatalogError(
                    f"foreign table {name!r} is already attached")
            if self.catalog.has_table(name):
                raise CatalogError(
                    f"cannot attach {name!r}: a base table with that name "
                    f"exists")
            provider = self.registry.create(provider_type, uri, options)
            try:
                schema = provider.discover_schema()
            except OperationalError:
                raise
            except (BdbmsError, OSError) as exc:
                raise OperationalError(
                    f"attach {name!r}: schema discovery failed for "
                    f"{uri!r}: {exc}") from exc
            entry = AttachedTable(name=name, uri=uri,
                                  provider_type=provider_type.lower(),
                                  options=options, schema=schema,
                                  provider=provider)
            self._tables[name.lower()] = entry
            self.catalog.bump_schema_version()
        if self.journal is not None:
            self.journal.note_attach(entry)
        return entry

    def detach(self, name: str) -> AttachedTable:
        with self._lock:
            entry = self._tables.pop(name.lower(), None)
            if entry is None:
                raise CatalogError(f"no attached foreign table {name!r}")
            self.catalog.bump_schema_version()
        self._close_entry(entry)
        if self.journal is not None:
            self.journal.note_detach(entry.name)
        return entry

    # ------------------------------------------------------------------
    # WAL recovery hooks (no journaling, no source access)
    # ------------------------------------------------------------------
    def register_recovered(self, name: str, uri: str, provider_type: str,
                           options: Dict[str, Any],
                           schema: Optional[TableSchema]) -> None:
        with self._lock:
            self._tables[name.lower()] = AttachedTable(
                name=name, uri=uri, provider_type=provider_type,
                options=dict(options or {}), schema=schema)
            self.catalog.bump_schema_version()

    def forget(self, name: str) -> None:
        with self._lock:
            entry = self._tables.pop(name.lower(), None)
            if entry is not None:
                self.catalog.bump_schema_version()
        if entry is not None:
            self._close_entry(entry)

    def close(self) -> None:
        with self._lock:
            entries = list(self._tables.values())
        for entry in entries:
            self._close_entry(entry)

    @staticmethod
    def _close_entry(entry: AttachedTable) -> None:
        provider, entry.provider = entry.provider, None
        if provider is not None:
            try:
                provider.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def provider_for(self, entry: AttachedTable) -> TableProvider:
        with self._lock:
            if entry.provider is None:
                entry.provider = self.registry.create(
                    entry.provider_type, entry.uri, entry.options)
            return entry.provider

    def _check_schema(self, entry: AttachedTable,
                      provider: TableProvider) -> TableSchema:
        """Re-discover the live schema and verify it matches the attached
        one; returns the attached schema (positions the planner resolved
        against)."""
        try:
            live = provider.discover_schema()
        except OperationalError:
            raise
        except (BdbmsError, OSError) as exc:
            raise OperationalError(
                f"foreign table {entry.name!r}: backing source {entry.uri!r} "
                f"is unavailable: {exc}") from exc
        if entry.schema is None:
            entry.schema = live
            return live
        expected = [(column.name.lower(), column.dtype)
                    for column in entry.schema.columns]
        actual = [(column.name.lower(), column.dtype)
                  for column in live.columns]
        if expected != actual:
            raise OperationalError(
                f"foreign table {entry.name!r}: schema of {entry.uri!r} "
                f"drifted since ATTACH (expected "
                f"{[f'{n} {t.value}' for n, t in expected]}, found "
                f"{[f'{n} {t.value}' for n, t in actual]}); DETACH and "
                f"re-ATTACH to pick up the new schema")
        return entry.schema

    def scan(self, name: str, qualifier: str,
             columns: Optional[Sequence[str]] = None,
             pushed: Sequence[ast.Expression] = (),
             limit: Optional[int] = None,
             batch_size: int = providers_base.DEFAULT_BATCH_SIZE):
        """Relation ``(OutputSchema, BatchedRows)`` over the foreign table.

        ``columns`` projects (attached-schema order is preserved); the
        provider may apply ``pushed`` at the source but the engine re-checks
        the full list regardless.  Provider failures during iteration are
        re-raised as :class:`OperationalError`.
        """
        entry = self.table(name)
        provider = self.provider_for(entry)
        schema = self._check_schema(entry, provider)
        if columns:
            known = {column.name.lower(): column.name
                     for column in schema.columns}
            ordered = [column.name for column in schema.columns
                       if column.name.lower() in
                       {name.lower() for name in columns}]
            unknown = [name for name in columns
                       if name.lower() not in known]
            if unknown:
                raise OperationalError(
                    f"foreign table {entry.name!r} has no column(s): "
                    f"{', '.join(sorted(unknown))}")
            out_names = ordered
        else:
            out_names = schema.column_names
        output_schema = OutputSchema.from_names(out_names, qualifier)

        def batches():
            try:
                iterator = provider.scan_batches(
                    columns=out_names if columns else None,
                    pushed_filters=list(pushed), limit=limit,
                    qualifier=qualifier, batch_size=batch_size)
                for batch in iterator:
                    yield batch
            except OperationalError:
                raise
            except (BdbmsError, OSError, ValueError) as exc:
                raise OperationalError(
                    f"foreign table {entry.name!r}: scan of "
                    f"{entry.uri!r} failed: {exc}") from exc

        return output_schema, BatchedRows(batches())

    # ------------------------------------------------------------------
    # Planner support
    # ------------------------------------------------------------------
    def column_names(self, name: str) -> List[str]:
        entry = self.table(name)
        if entry.schema is None:
            entry.schema = self._check_schema(
                entry, self.provider_for(entry))
        return entry.schema.column_names

    def row_estimate(self, name: str, default: float = 1000.0) -> float:
        """Provider-reported row count, or ``default`` when unavailable.

        Never raises: statistics feed the cost model, and a vanished source
        must fail at scan time with a scan-shaped error, not at plan time.
        """
        try:
            entry = self.table(name)
            provider = self.provider_for(entry)
            stats = provider.statistics()
        except Exception:
            return default
        if stats is None or stats.row_count is None:
            return default
        return max(1.0, float(stats.row_count))

    def distinct_estimate(self, name: str, column: str) -> Optional[float]:
        try:
            entry = self.table(name)
            provider = self.provider_for(entry)
            stats = provider.statistics()
        except Exception:
            return None
        if stats is None:
            return None
        return stats.distinct.get(column.lower())
