"""JSONL table provider: newline-delimited JSON objects as a foreign table.

Schema discovery samples the first ``sample`` lines (default 100): column
order is first-seen key order, and each column's type is the narrowest of
INTEGER -> FLOAT -> BOOLEAN -> TEXT that fits every sampled value.  Keys
absent from a line are NULL; keys beyond the sampled set are ignored at
scan time (the schema is fixed at ATTACH).  Nested objects and arrays are
carried as their JSON text (TEXT column).

Options: ``sample`` (default 100), ``pushdown`` (default true).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.catalog.schema import Column, TableSchema
from repro.core.errors import OperationalError
from repro.executor.row import RowBatch
from repro.providers.base import (DEFAULT_BATCH_SIZE, ProviderStatistics,
                                  TableProvider, compile_pushed_filters,
                                  option_bool, option_int)
from repro.sql import ast
from repro.types.datatypes import DataType


def _value_type(value: Any) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    return DataType.TEXT


def _widen(current: Optional[DataType], incoming: DataType) -> DataType:
    if current is None or current is incoming:
        return incoming
    numeric = (DataType.INTEGER, DataType.FLOAT)
    if current in numeric and incoming in numeric:
        return DataType.FLOAT
    return DataType.TEXT


def _coerce_cell(value: Any, dtype: DataType) -> Any:
    if value is None:
        return None
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    if dtype is DataType.TEXT and not isinstance(value, str):
        return json.dumps(value)
    if dtype is DataType.FLOAT and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    return value


class JsonlTableProvider(TableProvider):
    """Foreign table over a local JSON-lines file."""

    provider_name = "jsonl"

    def __init__(self, uri: str, options: Optional[Dict[str, Any]] = None):
        super().__init__(uri, options)
        self.sample_rows = option_int(self.options, "sample", 100)
        self.pushdown = option_bool(self.options, "pushdown", True)

    # ------------------------------------------------------------------
    def _open(self):
        try:
            return open(self.uri, "r", encoding="utf-8")
        except OSError as exc:
            raise OperationalError(
                f"jsonl provider: cannot open {self.uri!r}: {exc}") from exc

    def _parse_line(self, line: str, number: int) -> Dict[str, Any]:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise OperationalError(
                f"jsonl provider: line {number} of {self.uri!r} is not "
                f"valid JSON (truncated or malformed file): {exc}") from exc
        if not isinstance(record, dict):
            raise OperationalError(
                f"jsonl provider: line {number} of {self.uri!r} is not a "
                f"JSON object")
        return record

    def discover_schema(self) -> TableSchema:
        order: List[str] = []
        types: Dict[str, Optional[DataType]] = {}
        sampled = 0
        with self._open() as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                if sampled >= self.sample_rows:
                    break
                sampled += 1
                record = self._parse_line(line, number)
                for key, value in record.items():
                    if key not in types:
                        order.append(key)
                        types[key] = None
                    if value is not None:
                        types[key] = _widen(types[key], _value_type(value))
        if not order:
            raise OperationalError(
                f"jsonl provider: {self.uri!r} has no records to infer a "
                f"schema from")
        return TableSchema(os.path.basename(self.uri) or "jsonl", [
            Column(name, types[name] or DataType.TEXT) for name in order
        ])

    # ------------------------------------------------------------------
    def scan_batches(self,
                     columns: Optional[Sequence[str]] = None,
                     pushed_filters: Sequence[ast.Expression] = (),
                     limit: Optional[int] = None,
                     *,
                     qualifier: Optional[str] = None,
                     batch_size: int = DEFAULT_BATCH_SIZE,
                     ) -> Iterator[RowBatch]:
        schema = self.discover_schema()
        names = schema.column_names
        dtype_of = {column.name: column.dtype for column in schema.columns}
        known = {name.lower(): name for name in names}

        out_names: List[str] = []
        for name in (columns if columns else names):
            actual = known.get(name.lower())
            if actual is None:
                raise OperationalError(
                    f"jsonl provider: {self.uri!r} has no column {name!r}")
            out_names.append(actual)

        predicate = None
        if pushed_filters and self.pushdown:
            predicate = compile_pushed_filters(
                out_names if columns else names, pushed_filters, qualifier)
            predicate_names = out_names if columns else names
        if predicate is None:
            predicate_names = []

        def batches() -> Iterator[RowBatch]:
            remaining = limit
            pending: List[tuple] = []
            with self._open() as handle:
                for number, line in enumerate(handle, start=1):
                    if not line.strip():
                        continue
                    if remaining is not None and remaining <= 0:
                        break
                    record = self._parse_line(line, number)
                    values = tuple(
                        _coerce_cell(record.get(name), dtype_of[name])
                        for name in out_names)
                    if predicate is not None:
                        probe = values if predicate_names is out_names else \
                            tuple(_coerce_cell(record.get(name),
                                               dtype_of[name])
                                  for name in predicate_names)
                        if not predicate(probe):
                            continue
                    pending.append(values)
                    if remaining is not None:
                        remaining -= 1
                    if len(pending) >= batch_size:
                        yield RowBatch(pending)
                        pending = []
            if pending:
                yield RowBatch(pending)

        return batches()

    # ------------------------------------------------------------------
    def statistics(self) -> Optional[ProviderStatistics]:
        try:
            size = os.path.getsize(self.uri)
        except OSError:
            return None
        if size == 0:
            return ProviderStatistics(row_count=0.0)
        sampled = 0
        sampled_bytes = 0
        with self._open() as handle:
            for line in handle:
                if not line.strip():
                    continue
                sampled += 1
                sampled_bytes += len(line.encode("utf-8"))
                if sampled >= self.sample_rows:
                    break
        if sampled == 0 or sampled_bytes == 0:
            return ProviderStatistics(row_count=0.0)
        return ProviderStatistics(
            row_count=max(float(sampled), size / (sampled_bytes / sampled)))
