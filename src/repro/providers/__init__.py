"""Pluggable table providers: CSV, JSONL, and repro-database foreign tables.

Importing this package registers the built-in providers in the process-wide
:data:`~repro.providers.base.registry`; external packages add their own via
:func:`register_provider` or the ``repro.table_providers`` entry-point
group.  See ``docs/PROVIDERS.md`` for the provider API and the ATTACH SQL
surface.
"""

from repro.providers.base import (DEFAULT_BATCH_SIZE, ProviderRegistry,
                                  ProviderStatistics, TableProvider,
                                  register_provider, registry)
from repro.providers.csv_provider import CsvTableProvider
from repro.providers.jsonl_provider import JsonlTableProvider
from repro.providers.manager import AttachedTable, ForeignTableManager
from repro.providers.repro_provider import ReproTableProvider

if not registry.is_registered("csv"):
    register_provider("csv", CsvTableProvider)
if not registry.is_registered("jsonl"):
    register_provider("jsonl", JsonlTableProvider)
if not registry.is_registered("repro"):
    register_provider("repro", ReproTableProvider)

__all__ = [
    "AttachedTable",
    "CsvTableProvider",
    "DEFAULT_BATCH_SIZE",
    "ForeignTableManager",
    "JsonlTableProvider",
    "ProviderRegistry",
    "ProviderStatistics",
    "ReproTableProvider",
    "TableProvider",
    "register_provider",
    "registry",
]
