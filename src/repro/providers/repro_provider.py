"""Repro table provider: another repro database file, opened read-only.

The provider opens the backing database lazily (first schema discovery or
scan), runs its normal WAL recovery, and serves one of its user tables —
*including its annotations*: each scanned batch carries the per-cell
annotation vectors built from the remote database's own propagation index,
so annotation identity survives the provider boundary and A-SQL operators
downstream see exactly what a native scan of that database would.

This is also the local half of the scatter-gather groundwork: a future
``remote-repro`` provider speaks the same scan contract against a network
peer instead of a file handle.

Options: ``table`` (which user table to expose; defaults to the only user
table, error if ambiguous), ``annotations`` (default true — when false,
batches carry no annotation vectors), ``pushdown`` (default true).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.catalog.schema import TableSchema
from repro.core.errors import BdbmsError, OperationalError
from repro.executor.row import RowBatch
from repro.providers.base import (DEFAULT_BATCH_SIZE, ProviderStatistics,
                                  TableProvider, compile_pushed_filters,
                                  option_bool)
from repro.sql import ast


class ReproTableProvider(TableProvider):
    """Foreign table over a user table of another repro database file."""

    provider_name = "repro"

    def __init__(self, uri: str, options: Optional[Dict[str, Any]] = None):
        super().__init__(uri, options)
        self.table_option = self.options.get("table")
        self.include_annotations = option_bool(
            self.options, "annotations", True)
        self.pushdown = option_bool(self.options, "pushdown", True)
        self._database = None

    # ------------------------------------------------------------------
    def _open_database(self):
        if self._database is None:
            if not os.path.exists(self.uri):
                raise OperationalError(
                    f"repro provider: database file {self.uri!r} does not "
                    f"exist")
            from repro.core.database import Database
            try:
                self._database = Database(self.uri)
            except OperationalError:
                raise
            except (BdbmsError, OSError) as exc:
                raise OperationalError(
                    f"repro provider: cannot open database {self.uri!r}: "
                    f"{exc}") from exc
        return self._database

    def _table_name(self) -> str:
        database = self._open_database()
        # Annotation bookkeeping tables (__ann_*/__annlink_*) are internal;
        # they never count toward the "single table" auto-pick and are not
        # directly attachable.
        names = [name for name in database.catalog.table_names()
                 if not name.startswith("__")]
        if self.table_option:
            wanted = str(self.table_option)
            for name in names:
                if name.lower() == wanted.lower():
                    return name
            raise OperationalError(
                f"repro provider: database {self.uri!r} has no table "
                f"{wanted!r} (tables: {', '.join(names) or '<none>'})")
        if len(names) == 1:
            return names[0]
        raise OperationalError(
            f"repro provider: database {self.uri!r} has "
            f"{len(names)} tables; pick one with the TABLE option "
            f"(tables: {', '.join(names) or '<none>'})")

    def discover_schema(self) -> TableSchema:
        database = self._open_database()
        table = database.catalog.table(self._table_name())
        return table.schema

    # ------------------------------------------------------------------
    def scan_batches(self,
                     columns: Optional[Sequence[str]] = None,
                     pushed_filters: Sequence[ast.Expression] = (),
                     limit: Optional[int] = None,
                     *,
                     qualifier: Optional[str] = None,
                     batch_size: int = DEFAULT_BATCH_SIZE,
                     ) -> Iterator[RowBatch]:
        from repro.executor.operators import TableRowSource

        database = self._open_database()
        table_name = self._table_name()
        try:
            table = database.catalog.table(table_name)
        except BdbmsError as exc:
            raise OperationalError(str(exc)) from exc
        names = table.schema.column_names
        known = {name.lower(): i for i, name in enumerate(names)}

        positions: List[int] = []
        for name in (columns if columns else names):
            position = known.get(name.lower())
            if position is None:
                raise OperationalError(
                    f"repro provider: table {table_name!r} in {self.uri!r} "
                    f"has no column {name!r}")
            positions.append(position)
        identity = positions == list(range(len(names)))

        propagation_index = None
        if self.include_annotations:
            index = database.annotations.propagation_index(table_name)
            if not index.is_empty():
                propagation_index = index
        source = TableRowSource(table, table_name,
                                propagation_index=propagation_index)

        predicate = None
        if pushed_filters and self.pushdown:
            predicate = compile_pushed_filters(
                [names[position] for position in positions],
                pushed_filters, qualifier)

        def batches() -> Iterator[RowBatch]:
            remaining = limit
            with database.transactions.read_access():
                for batch in source.iter_batches(batch_size):
                    if remaining is not None and remaining <= 0:
                        return
                    if identity:
                        values = batch.values
                        annotations = batch.annotations
                    else:
                        values = [tuple(row[p] for p in positions)
                                  for row in batch.values]
                        annotations = None if batch.annotations is None else [
                            [vector[p] for p in positions]
                            for vector in batch.annotations]
                    if predicate is not None:
                        keep = [i for i, row in enumerate(values)
                                if predicate(row)]
                        if len(keep) != len(values):
                            values = [values[i] for i in keep]
                            if annotations is not None:
                                annotations = [annotations[i] for i in keep]
                    if not values:
                        continue
                    if remaining is not None and len(values) > remaining:
                        values = values[:remaining]
                        if annotations is not None:
                            annotations = annotations[:remaining]
                    if remaining is not None:
                        remaining -= len(values)
                    yield RowBatch(list(values), annotations)

        return batches()

    # ------------------------------------------------------------------
    def statistics(self) -> Optional[ProviderStatistics]:
        try:
            database = self._open_database()
            table = database.catalog.table(self._table_name())
        except BdbmsError:
            return None
        return ProviderStatistics(row_count=float(len(table)))

    def close(self) -> None:
        if self._database is not None:
            database, self._database = self._database, None
            try:
                database.close()
            except Exception:
                pass
