"""Provenance management (paper Section 4).

Provenance (lineage) is treated as a *category of annotations* with two extra
requirements the paper calls out:

* **structure** — provenance records follow a predefined XML schema (source,
  operation, time, optional program/user/notes) that the manager enforces;
* **authorization** — end-users cannot insert or update provenance; only the
  system and registered integration tools may write it, while everyone may
  query and propagate it.

The manager also answers the Figure 8 question: "what is the source of this
value at time T?" by replaying the provenance records attached to a cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.annotations.manager import AnnotationManager
from repro.annotations.model import Annotation, CATEGORY_PROVENANCE, Cell
from repro.annotations.storage import SCHEME_COMPACT
from repro.annotations.xml_utils import XmlSchema, body_fields
from repro.authorization.grants import AccessControl
from repro.core.errors import ProvenanceError
from repro.types.datatypes import TIMESTAMP_FORMAT, parse_timestamp

#: Name of the annotation table used for provenance on each user table.
PROVENANCE_TABLE_NAME = "provenance"

#: The XML schema every provenance record must follow.
PROVENANCE_SCHEMA = XmlSchema(
    root_tag="Provenance",
    required=["source", "operation", "time"],
    optional=["program", "user", "notes"],
)


@dataclass(frozen=True)
class ProvenanceRecord:
    """A parsed provenance record attached to a set of cells."""

    source: str
    operation: str
    time: datetime
    program: Optional[str] = None
    user: Optional[str] = None
    notes: Optional[str] = None
    annotation: Optional[Annotation] = None

    @classmethod
    def from_annotation(cls, annotation: Annotation) -> "ProvenanceRecord":
        fields = body_fields(annotation.body)
        if "source" not in fields or "operation" not in fields:
            raise ProvenanceError(
                f"annotation {annotation.ann_id} of {annotation.annotation_table} "
                f"is not a valid provenance record"
            )
        time_text = fields.get("time", "")
        try:
            time = parse_timestamp(time_text)
        except Exception:
            time = annotation.created_at
        return cls(
            source=fields["source"],
            operation=fields["operation"],
            time=time,
            program=fields.get("program") or None,
            user=fields.get("user") or None,
            notes=fields.get("notes") or None,
            annotation=annotation,
        )


class ProvenanceManager:
    """Writes and queries provenance records through the annotation manager."""

    def __init__(self, annotations: AnnotationManager, access: AccessControl):
        self.annotations = annotations
        self.access = access
        #: integration tools allowed to write provenance (besides superusers).
        self._registered_tools: Set[str] = {"system"}

    # ------------------------------------------------------------------
    # Authorization over provenance data
    # ------------------------------------------------------------------
    def register_tool(self, name: str) -> None:
        """Register an integration tool that may write provenance records."""
        self._registered_tools.add(name.lower())

    def unregister_tool(self, name: str) -> None:
        self._registered_tools.discard(name.lower())

    def can_write(self, agent: str, table: str) -> bool:
        if agent.lower() in self._registered_tools:
            return True
        if self.access.is_superuser(agent):
            return True
        return self.access.has_privilege(agent, "PROVENANCE", table)

    # ------------------------------------------------------------------
    # Writing provenance
    # ------------------------------------------------------------------
    def ensure_provenance_table(self, user_table: str):
        """Create the per-table provenance annotation table if missing."""
        if not self.annotations.has(user_table, PROVENANCE_TABLE_NAME):
            self.annotations.create_annotation_table(
                user_table, PROVENANCE_TABLE_NAME,
                scheme=SCHEME_COMPACT, category=CATEGORY_PROVENANCE,
            )
        return self.annotations.get(user_table, PROVENANCE_TABLE_NAME)

    def record(self, user_table: str, cells: Iterable[Cell], source: str,
               operation: str, agent: str = "system",
               time: Optional[datetime] = None, program: Optional[str] = None,
               user: Optional[str] = None, notes: Optional[str] = None) -> Annotation:
        """Attach a provenance record to ``cells`` of ``user_table``."""
        if not self.can_write(agent, user_table):
            raise ProvenanceError(
                f"agent {agent!r} is not allowed to write provenance for "
                f"table {user_table!r}; provenance is system-maintained"
            )
        when = time or datetime.now()
        fields = {
            "source": source,
            "operation": operation,
            "time": when.strftime(TIMESTAMP_FORMAT),
        }
        if program:
            fields["program"] = program
        if user:
            fields["user"] = user
        if notes:
            fields["notes"] = notes
        body = PROVENANCE_SCHEMA.build(**fields)
        PROVENANCE_SCHEMA.validate(body)
        table = self.ensure_provenance_table(user_table)
        return table.add(body, cells, curator=agent,
                         category=CATEGORY_PROVENANCE, created_at=when)

    # ------------------------------------------------------------------
    # Querying provenance
    # ------------------------------------------------------------------
    def records_for_cell(self, user_table: str, tuple_id: int, column: str,
                         include_archived: bool = False) -> List[ProvenanceRecord]:
        """Every provenance record attached to one cell, oldest first."""
        if not self.annotations.has(user_table, PROVENANCE_TABLE_NAME):
            return []
        table = self.annotations.get(user_table, PROVENANCE_TABLE_NAME)
        schema = self.annotations.catalog.table(user_table).schema
        position = schema.column_position(column)
        records = []
        for annotation in table.annotations(include_archived=include_archived):
            cells = table.cells_of(annotation.ann_id)
            if (tuple_id, position) in cells:
                records.append(ProvenanceRecord.from_annotation(annotation))
        records.sort(key=lambda record: record.time)
        return records

    def source_at(self, user_table: str, tuple_id: int, column: str,
                  at_time: Optional[datetime] = None) -> Optional[ProvenanceRecord]:
        """The provenance record in effect for a cell at ``at_time`` (Figure 8).

        This is the most recent record whose time is not after ``at_time``;
        with no time given, the most recent record overall.
        """
        records = self.records_for_cell(user_table, tuple_id, column)
        if at_time is not None:
            records = [record for record in records if record.time <= at_time]
        return records[-1] if records else None

    def history(self, user_table: str, tuple_id: int, column: str) -> List[ProvenanceRecord]:
        """The full provenance history of a cell, oldest first."""
        return self.records_for_cell(user_table, tuple_id, column)

    def sources_of_table(self, user_table: str) -> Dict[str, int]:
        """How many provenance records each source contributed to a table."""
        if not self.annotations.has(user_table, PROVENANCE_TABLE_NAME):
            return {}
        table = self.annotations.get(user_table, PROVENANCE_TABLE_NAME)
        counts: Dict[str, int] = {}
        for annotation in table.annotations(include_archived=True):
            record = ProvenanceRecord.from_annotation(annotation)
            counts[record.source] = counts.get(record.source, 0) + 1
        return counts
