"""Provenance management: structured, system-maintained lineage annotations."""

from repro.provenance.manager import (
    PROVENANCE_SCHEMA,
    PROVENANCE_TABLE_NAME,
    ProvenanceManager,
    ProvenanceRecord,
)

__all__ = [
    "PROVENANCE_SCHEMA",
    "PROVENANCE_TABLE_NAME",
    "ProvenanceManager",
    "ProvenanceRecord",
]
