"""Workload builders that reproduce the paper's running examples.

* :func:`build_gene_tables` creates the DB1_Gene / DB2_Gene pair of Figures 2
  and 3, including annotations A1–A3 and B1–B5 shaped like the paper's, with
  a configurable number of genes and a configurable overlap between the two
  tables (the overlap is what the INTERSECT example queries).
* :func:`build_gene_protein_pipeline` creates the Gene / Protein /
  GeneMatching schema of Figure 9 together with its procedural dependency
  rules (prediction tool P, the lab experiment, and BLAST-2.2.15).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.database import Database
from repro.dependencies.rules import DependencyRule, Procedure
from repro.workloads.sequences import (
    dna_sequence,
    gene_identifier,
    gene_name,
    protein_sequence,
)


def build_gene_tables(db: Database, num_genes: int = 50, overlap: float = 0.4,
                      seed: int = 21, annotation_scheme: Optional[str] = None,
                      sequence_length: int = 60) -> Dict[str, List[str]]:
    """Create and populate DB1_Gene and DB2_Gene with annotations.

    Returns a mapping with the gene ids loaded into each table and the ids of
    the genes common to both (``"common"``).
    """
    if annotation_scheme is not None:
        db.config.default_annotation_scheme = annotation_scheme
    rng = random.Random(seed)
    db.execute(
        "CREATE TABLE DB1_Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)"
    )
    db.execute(
        "CREATE TABLE DB2_Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)"
    )
    db.execute("CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene")
    db.execute("CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene")

    num_common = int(num_genes * overlap)
    db1_ids: List[str] = []
    db2_ids: List[str] = []
    common: List[str] = []

    def insert_gene(table: str, index: int, gid: str, name: str, seq: str) -> None:
        db.execute(
            f"INSERT INTO {table} VALUES ('{gid}', '{name}', '{seq}')"
        )

    # Genes present in both tables (same data, different annotations).
    for index in range(num_common):
        gid = gene_identifier(index)
        name = gene_name(index, rng)
        seq = dna_sequence(sequence_length, rng)
        insert_gene("DB1_Gene", index, gid, name, seq)
        insert_gene("DB2_Gene", index, gid, name, seq)
        db1_ids.append(gid)
        db2_ids.append(gid)
        common.append(gid)
    # Genes unique to DB1.
    for index in range(num_common, num_genes):
        gid = gene_identifier(index)
        insert_gene("DB1_Gene", index, gid, gene_name(index, rng),
                    dna_sequence(sequence_length, rng))
        db1_ids.append(gid)
    # Genes unique to DB2.
    for index in range(num_genes, num_genes + (num_genes - num_common)):
        gid = gene_identifier(index)
        insert_gene("DB2_Gene", index, gid, gene_name(index, rng),
                    dna_sequence(sequence_length, rng))
        db2_ids.append(gid)

    # Annotations shaped like the paper's A1-A3 / B1-B5.
    half = db1_ids[: max(1, len(db1_ids) // 2)]
    half_list = ", ".join(f"'{gid}'" for gid in half)
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation "
        "VALUE 'These genes are published in J. Bact. 2006' "
        f"ON (SELECT G.GID, G.GName FROM DB1_Gene G WHERE G.GID IN ({half_list}))"
    )
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation "
        "VALUE 'These genes were obtained from RegulonDB' "
        "ON (SELECT G.* FROM DB1_Gene G)"
    )
    first_gid = db1_ids[0]
    db.execute(
        "ADD ANNOTATION TO DB1_Gene.GAnnotation "
        "VALUE 'Involved in methyltransferase activity' "
        f"ON (SELECT G.GSequence FROM DB1_Gene G WHERE G.GID = '{first_gid}')"
    )
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation "
        "VALUE 'obtained from GenoBase' "
        "ON (SELECT G.GSequence FROM DB2_Gene G)"
    )
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation "
        "VALUE 'Curated by user admin' "
        f"ON (SELECT G.* FROM DB2_Gene G WHERE G.GID = '{db2_ids[0]}')"
    )
    db.execute(
        "ADD ANNOTATION TO DB2_Gene.GAnnotation "
        "VALUE 'This gene has an unknown function' "
        f"ON (SELECT G.* FROM DB2_Gene G WHERE G.GID = '{db2_ids[-1]}')"
    )
    return {"db1": db1_ids, "db2": db2_ids, "common": common}


def _derive_protein_sequence(source_row: Dict[str, object],
                             target_row: Dict[str, object]) -> str:
    """Deterministic stand-in for the prediction tool P of Figure 9.

    Maps DNA codON triplets to a pseudo-residue alphabet so that re-running
    the "tool" on a changed gene sequence yields a changed protein sequence.
    """
    gene = str(source_row.get("gsequence") or source_row.get("GSequence") or "")
    alphabet = "ACDEFGHIKLMNPQRSTVWY"
    residues = []
    for index in range(0, max(len(gene) - 2, 0), 3):
        codon = gene[index:index + 3]
        residues.append(alphabet[sum(ord(c) for c in codon) % len(alphabet)])
    return "".join(residues) or "M"


def _blast_evalue(source_row: Dict[str, object],
                  target_row: Dict[str, object]) -> float:
    """Deterministic stand-in for BLAST-2.2.15's Evalue computation."""
    gene1 = str(source_row.get("gene1", ""))
    gene2 = str(source_row.get("gene2", ""))
    matches = sum(1 for a, b in zip(gene1, gene2) if a == b)
    length = max(len(gene1), len(gene2), 1)
    return round(10 ** (-10 * matches / length), 12)


def build_gene_protein_pipeline(db: Database, num_genes: int = 30, seed: int = 33,
                                sequence_length: int = 60,
                                with_matching: bool = True) -> Dict[str, List[int]]:
    """Create the Figure 9 schema, data, and procedural dependency rules.

    Returns the tuple ids inserted into each table, keyed by table name.
    """
    rng = random.Random(seed)
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.execute(
        "CREATE TABLE Protein (PName TEXT PRIMARY KEY, GID TEXT, "
        "PSequence SEQUENCE, PFunction TEXT)"
    )
    gene_ids: List[int] = []
    protein_ids: List[int] = []
    functions = ["Hypothetical protein", "Cell wall formation", "Exhibitor",
                 "Transcription factor", "Membrane transport"]
    gene_rows = []
    for index in range(num_genes):
        gid = gene_identifier(index)
        name = gene_name(index, rng)
        seq = dna_sequence(sequence_length, rng)
        gene_rows.append((gid, name, seq))
        summary = db.execute(f"INSERT INTO Gene VALUES ('{gid}', '{name}', '{seq}')")
        gene_ids.extend(summary.details["tuple_ids"])
        pseq = _derive_protein_sequence({"gsequence": seq}, {})
        function = functions[index % len(functions)]
        summary = db.execute(
            f"INSERT INTO Protein VALUES ('{name}', '{gid}', '{pseq}', '{function}')"
        )
        protein_ids.extend(summary.details["tuple_ids"])

    prediction_tool = Procedure("Prediction tool P", executable=True,
                                invertible=False,
                                implementation=_derive_protein_sequence)
    lab_experiment = Procedure("Lab experiment", executable=False, invertible=False)
    db.tracker.register_rule(DependencyRule.create(
        name="gene_to_protein_sequence",
        sources=[("Gene", "GSequence")],
        targets=[("Protein", "PSequence")],
        procedure=prediction_tool,
        source_key="GID", target_key="GID",
    ))
    db.tracker.register_rule(DependencyRule.create(
        name="protein_sequence_to_function",
        sources=[("Protein", "PSequence")],
        targets=[("Protein", "PFunction")],
        procedure=lab_experiment,
    ))

    matching_ids: List[int] = []
    if with_matching:
        db.execute(
            "CREATE TABLE GeneMatching (Gene1 SEQUENCE, Gene2 SEQUENCE, Evalue FLOAT)"
        )
        blast = Procedure("BLAST-2.2.15", executable=True, invertible=False,
                          implementation=_blast_evalue)
        db.tracker.register_rule(DependencyRule.create(
            name="blast_evalue",
            sources=[("GeneMatching", "Gene1"), ("GeneMatching", "Gene2")],
            targets=[("GeneMatching", "Evalue")],
            procedure=blast,
        ))
        for index in range(0, num_genes - 1, 2):
            gene1 = gene_rows[index][2]
            gene2 = gene_rows[index + 1][2]
            evalue = _blast_evalue({"gene1": gene1, "gene2": gene2}, {})
            summary = db.execute(
                f"INSERT INTO GeneMatching VALUES ('{gene1}', '{gene2}', {evalue})"
            )
            matching_ids.extend(summary.details["tuple_ids"])
    return {"gene": gene_ids, "protein": protein_ids, "genematching": matching_ids}
