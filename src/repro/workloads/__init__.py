"""Synthetic biological workload generators used by examples and benchmarks."""

from repro.workloads.genes import build_gene_protein_pipeline, build_gene_tables
from repro.workloads.sequences import (
    DNA_ALPHABET,
    PROTEIN_ALPHABET,
    SECONDARY_STRUCTURE_ALPHABET,
    dna_corpus,
    dna_sequence,
    gene_identifier,
    gene_name,
    mutate_sequence,
    protein_sequence,
    secondary_structure_corpus,
    secondary_structure_sequence,
    structure_points,
)

__all__ = [
    "build_gene_protein_pipeline",
    "build_gene_tables",
    "DNA_ALPHABET",
    "PROTEIN_ALPHABET",
    "SECONDARY_STRUCTURE_ALPHABET",
    "dna_corpus",
    "dna_sequence",
    "gene_identifier",
    "gene_name",
    "mutate_sequence",
    "protein_sequence",
    "secondary_structure_corpus",
    "secondary_structure_sequence",
    "structure_points",
]
