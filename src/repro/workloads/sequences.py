"""Synthetic biological sequence generators.

The paper's driving applications (an E. coli genome resource and a protein
structure database) are not publicly packaged, so the benchmarks and examples
use synthetic generators that reproduce the statistical shape the paper's
techniques rely on:

* DNA sequences — uniform A/C/G/T strings (short runs, RLE-unfriendly);
* protein primary sequences — uniform 20-letter strings;
* protein *secondary structure* sequences — long runs of H (helix),
  E (strand), and L (loop) with geometric run lengths, exactly the RLE-
  friendly data of Figure 12;
* protein 3-D structure point clouds — clustered points in space for the
  SP-GiST / multidimensional experiments.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

DNA_ALPHABET = "ACGT"
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"
SECONDARY_STRUCTURE_ALPHABET = "HEL"


def dna_sequence(length: int, rng: random.Random) -> str:
    """A uniform random DNA sequence of ``length`` bases."""
    return "".join(rng.choice(DNA_ALPHABET) for _ in range(length))


def protein_sequence(length: int, rng: random.Random) -> str:
    """A uniform random protein primary sequence of ``length`` residues."""
    return "".join(rng.choice(PROTEIN_ALPHABET) for _ in range(length))


def secondary_structure_sequence(length: int, rng: random.Random,
                                 mean_run_length: float = 8.0) -> str:
    """A protein secondary-structure string with geometric run lengths.

    Successive runs use different characters (as real secondary structure
    annotations do), so the RLE form has one run per state change and the
    compression ratio is roughly ``mean_run_length`` : bytes-per-run.
    """
    if length <= 0:
        return ""
    parts: List[str] = []
    current = rng.choice(SECONDARY_STRUCTURE_ALPHABET)
    remaining = length
    p = 1.0 / max(mean_run_length, 1.0)
    while remaining > 0:
        run = 1
        while rng.random() > p and run < remaining:
            run += 1
        run = min(run, remaining)
        parts.append(current * run)
        remaining -= run
        choices = [c for c in SECONDARY_STRUCTURE_ALPHABET if c != current]
        current = rng.choice(choices)
    return "".join(parts)


def secondary_structure_corpus(count: int, length: int, seed: int = 7,
                               mean_run_length: float = 8.0) -> List[str]:
    """A reproducible corpus of secondary-structure sequences."""
    rng = random.Random(seed)
    return [secondary_structure_sequence(length, rng, mean_run_length)
            for _ in range(count)]


def dna_corpus(count: int, length: int, seed: int = 11) -> List[str]:
    rng = random.Random(seed)
    return [dna_sequence(length, rng) for _ in range(count)]


def mutate_sequence(sequence: str, num_mutations: int, rng: random.Random,
                    alphabet: str = DNA_ALPHABET) -> str:
    """Apply ``num_mutations`` random single-character substitutions."""
    if not sequence or num_mutations <= 0:
        return sequence
    chars = list(sequence)
    for _ in range(num_mutations):
        position = rng.randrange(len(chars))
        replacement = rng.choice([c for c in alphabet if c != chars[position]])
        chars[position] = replacement
    return "".join(chars)


def structure_points(count: int, seed: int = 13, clusters: int = 5,
                     spread: float = 3.0,
                     extent: float = 100.0) -> List[Tuple[float, float]]:
    """2-D points mimicking projected protein 3-D structure coordinates.

    Points are drawn around a handful of cluster centres, which is what makes
    space-partitioning indexes attractive compared to one-dimensional ones.
    """
    rng = random.Random(seed)
    centres = [(rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(clusters)]
    points = []
    for index in range(count):
        cx, cy = centres[index % clusters]
        points.append((rng.gauss(cx, spread), rng.gauss(cy, spread)))
    return points


def gene_identifier(index: int) -> str:
    """Gene identifiers in the JWnnnn style used by the paper's examples."""
    return f"JW{index:04d}"


def gene_name(index: int, rng: random.Random) -> str:
    """Short lower-case gene names like the paper's mraW / ftsI / yabP."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    return "".join(rng.choice(letters) for _ in range(3)) + rng.choice("ABCDEFGH")
