"""Update authorization: GRANT/REVOKE plus content-based approval."""

from repro.authorization.approval import (
    ApprovalConfig,
    ApprovalManager,
    InverseStatement,
    LoggedOperation,
    OperationStatus,
    OperationType,
)
from repro.authorization.grants import PRIVILEGES, AccessControl, GrantRecord

__all__ = [
    "ApprovalConfig",
    "ApprovalManager",
    "InverseStatement",
    "LoggedOperation",
    "OperationStatus",
    "OperationType",
    "PRIVILEGES",
    "AccessControl",
    "GrantRecord",
]
