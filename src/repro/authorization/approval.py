"""Content-based approval (paper Section 6, Figure 11).

With content-based approval turned ON for a table (or specific columns), every
INSERT/UPDATE/DELETE is recorded in an update log together with an
automatically generated *inverse statement* that negates its effect:

* INSERT  -> a DELETE of the inserted tuple,
* DELETE  -> an INSERT restoring the deleted values,
* UPDATE  -> an UPDATE restoring the old values.

The designated approver reviews the log and approves or disapproves each
operation *based on its content*; disapproval executes the inverse statement,
and the dependency tracker is informed so that items derived from the undone
values are invalidated.  Data changed by pending operations remains visible
(the paper's "users may be allowed to view the data pending its approval").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.authorization.grants import AccessControl
from repro.catalog.catalog import SystemCatalog
from repro.core.errors import ApprovalError, AuthorizationError
from repro.dependencies.tracker import DependencyTracker, UpdateImpact


class OperationType(enum.Enum):
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"


class OperationStatus(enum.Enum):
    PENDING = "PENDING"
    APPROVED = "APPROVED"
    DISAPPROVED = "DISAPPROVED"


@dataclass
class InverseStatement:
    """The automatically generated statement that undoes a logged operation."""

    op_type: OperationType
    table: str
    tuple_id: Optional[int] = None
    #: values needed to undo: old column values for UPDATE, the full row for
    #: DELETE (restore), nothing extra for INSERT (just delete the tuple).
    values: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        if self.op_type is OperationType.DELETE:
            return f"DELETE FROM {self.table} WHERE tuple_id = {self.tuple_id}"
        if self.op_type is OperationType.INSERT:
            cols = ", ".join(self.values)
            return f"INSERT INTO {self.table}({cols}) VALUES (...)"
        assignments = ", ".join(f"{col} = {value!r}" for col, value in self.values.items())
        return f"UPDATE {self.table} SET {assignments} WHERE tuple_id = {self.tuple_id}"


@dataclass
class LoggedOperation:
    """One entry of the content-approval update log."""

    op_id: int
    user: str
    table: str
    op_type: OperationType
    tuple_id: int
    issued_at: datetime
    #: column -> new value for INSERT/UPDATE; column -> old value for DELETE
    changes: Dict[str, Any]
    inverse: InverseStatement
    status: OperationStatus = OperationStatus.PENDING
    reviewed_by: Optional[str] = None
    reviewed_at: Optional[datetime] = None

    @property
    def is_pending(self) -> bool:
        return self.status is OperationStatus.PENDING


@dataclass
class ApprovalConfig:
    """Content approval switched ON for a table (optionally specific columns)."""

    table: str
    approver: str
    columns: Tuple[str, ...] = ()

    def monitors(self, columns: Optional[Sequence[str]] = None) -> bool:
        """True when an operation touching ``columns`` must be logged."""
        if not self.columns:
            return True
        if columns is None:
            return True
        monitored = {column.lower() for column in self.columns}
        return any(column.lower() in monitored for column in columns)


class ApprovalManager:
    """Maintains approval configurations and the update log."""

    def __init__(self, catalog: SystemCatalog, access: AccessControl,
                 tracker: Optional[DependencyTracker] = None):
        self.catalog = catalog
        self.access = access
        self.tracker = tracker
        self._configs: Dict[str, ApprovalConfig] = {}
        self._log: List[LoggedOperation] = []
        self._next_op_id = 1

    # ------------------------------------------------------------------
    # Configuration (START / STOP CONTENT APPROVAL)
    # ------------------------------------------------------------------
    def start_approval(self, table: str, approver: str,
                       columns: Optional[Sequence[str]] = None) -> ApprovalConfig:
        catalog_table = self.catalog.table(table)
        for column in columns or []:
            catalog_table.schema.column(column)
        config = ApprovalConfig(
            table=catalog_table.name,
            approver=approver,
            columns=tuple(columns or ()),
        )
        self._configs[catalog_table.name.lower()] = config
        return config

    def stop_approval(self, table: str,
                      columns: Optional[Sequence[str]] = None) -> None:
        key = table.lower()
        config = self._configs.get(key)
        if config is None:
            raise ApprovalError(f"content approval is not active on table {table!r}")
        if not columns:
            del self._configs[key]
            return
        remaining = tuple(
            column for column in config.columns
            if column.lower() not in {c.lower() for c in columns}
        )
        if config.columns and remaining:
            self._configs[key] = ApprovalConfig(config.table, config.approver, remaining)
        else:
            del self._configs[key]

    def config_for(self, table: str) -> Optional[ApprovalConfig]:
        return self._configs.get(table.lower())

    def is_monitored(self, table: str,
                     columns: Optional[Sequence[str]] = None) -> bool:
        config = self.config_for(table)
        return config is not None and config.monitors(columns)

    # ------------------------------------------------------------------
    # Logging (called by the engine after it applies a DML statement)
    # ------------------------------------------------------------------
    def log_insert(self, user: str, table: str, tuple_id: int,
                   row: Dict[str, Any]) -> Optional[LoggedOperation]:
        if not self.is_monitored(table, list(row)):
            return None
        inverse = InverseStatement(OperationType.DELETE, table, tuple_id)
        return self._append(user, table, OperationType.INSERT, tuple_id, dict(row), inverse)

    def log_update(self, user: str, table: str, tuple_id: int,
                   old_values: Dict[str, Any],
                   new_values: Dict[str, Any]) -> Optional[LoggedOperation]:
        if not self.is_monitored(table, list(new_values)):
            return None
        inverse = InverseStatement(OperationType.UPDATE, table, tuple_id, dict(old_values))
        return self._append(user, table, OperationType.UPDATE, tuple_id, dict(new_values), inverse)

    def log_delete(self, user: str, table: str, tuple_id: int,
                   old_row: Dict[str, Any]) -> Optional[LoggedOperation]:
        if not self.is_monitored(table):
            return None
        inverse = InverseStatement(OperationType.INSERT, table, tuple_id, dict(old_row))
        return self._append(user, table, OperationType.DELETE, tuple_id, dict(old_row), inverse)

    def _append(self, user: str, table: str, op_type: OperationType, tuple_id: int,
                changes: Dict[str, Any], inverse: InverseStatement) -> LoggedOperation:
        operation = LoggedOperation(
            op_id=self._next_op_id,
            user=user,
            table=self.catalog.table(table).name,
            op_type=op_type,
            tuple_id=tuple_id,
            issued_at=datetime.now(),
            changes=changes,
            inverse=inverse,
        )
        self._next_op_id += 1
        self._log.append(operation)
        return operation

    # ------------------------------------------------------------------
    # Review
    # ------------------------------------------------------------------
    def log_entries(self, table: Optional[str] = None,
                    status: Optional[OperationStatus] = None) -> List[LoggedOperation]:
        entries = self._log
        if table is not None:
            entries = [op for op in entries if op.table.lower() == table.lower()]
        if status is not None:
            entries = [op for op in entries if op.status is status]
        return list(entries)

    def pending_operations(self, table: Optional[str] = None) -> List[LoggedOperation]:
        return self.log_entries(table, OperationStatus.PENDING)

    def operation(self, op_id: int) -> LoggedOperation:
        for operation in self._log:
            if operation.op_id == op_id:
                return operation
        raise ApprovalError(f"no logged operation with id {op_id}")

    def _check_reviewer(self, operation: LoggedOperation, reviewer: str) -> None:
        config = self.config_for(operation.table)
        approver = config.approver if config else None
        if approver is not None and self.access.is_member(reviewer, approver):
            return
        if self.access.is_superuser(reviewer):
            return
        if self.access.has_privilege(reviewer, "APPROVE", operation.table):
            return
        raise AuthorizationError(
            f"user {reviewer!r} is not authorized to review operations on "
            f"table {operation.table!r}"
        )

    def approve(self, op_id: int, reviewer: str) -> LoggedOperation:
        operation = self.operation(op_id)
        if not operation.is_pending:
            raise ApprovalError(f"operation {op_id} has already been reviewed")
        self._check_reviewer(operation, reviewer)
        operation.status = OperationStatus.APPROVED
        operation.reviewed_by = reviewer
        operation.reviewed_at = datetime.now()
        return operation

    def disapprove(self, op_id: int, reviewer: str) -> Tuple[LoggedOperation, UpdateImpact]:
        """Disapprove an operation: execute its inverse and invalidate dependents."""
        operation = self.operation(op_id)
        if not operation.is_pending:
            raise ApprovalError(f"operation {op_id} has already been reviewed")
        self._check_reviewer(operation, reviewer)
        impact = self._execute_inverse(operation)
        operation.status = OperationStatus.DISAPPROVED
        operation.reviewed_by = reviewer
        operation.reviewed_at = datetime.now()
        return operation, impact

    def _execute_inverse(self, operation: LoggedOperation) -> UpdateImpact:
        inverse = operation.inverse
        table = self.catalog.table(inverse.table)
        impact = UpdateImpact()
        if inverse.op_type is OperationType.DELETE:
            # Undo an INSERT: remove the inserted tuple if it still exists.
            if table.has_tuple(inverse.tuple_id):
                table.delete_row(inverse.tuple_id)
                if self.tracker is not None:
                    impact = self.tracker.handle_delete(table.name, inverse.tuple_id)
        elif inverse.op_type is OperationType.INSERT:
            # Undo a DELETE: restore the old row (a new tuple id is assigned).
            table.insert_row(inverse.values)
        else:
            # Undo an UPDATE: restore the old values.
            if table.has_tuple(inverse.tuple_id):
                table.update_row(inverse.tuple_id, inverse.values)
                if self.tracker is not None:
                    impact = self.tracker.handle_update(
                        table.name, inverse.tuple_id, list(inverse.values)
                    )
        return impact

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def log_size(self) -> int:
        return len(self._log)

    def statistics(self) -> Dict[str, int]:
        counts = {status.value: 0 for status in OperationStatus}
        for operation in self._log:
            counts[operation.status.value] += 1
        counts["TOTAL"] = len(self._log)
        return counts
