"""Identity-based authorization: the classical GRANT/REVOKE model.

The paper's content-based approval mechanism (Section 6) works *with*, not in
replacement of, the existing GRANT/REVOKE model.  This module provides that
base model: users, groups, and per-table privileges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import AuthorizationError

#: Privileges understood by the access control component.
PRIVILEGES = {"SELECT", "INSERT", "UPDATE", "DELETE", "ANNOTATE", "APPROVE",
              "PROVENANCE", "ALL"}


@dataclass
class GrantRecord:
    """One granted privilege on one table to one grantee."""

    privilege: str
    table: str
    grantee: str

    def key(self) -> Tuple[str, str, str]:
        return (self.privilege.upper(), self.table.lower(), self.grantee.lower())


class AccessControl:
    """Users, groups, superusers, and GRANT/REVOKE bookkeeping."""

    def __init__(self) -> None:
        self._grants: Dict[Tuple[str, str, str], GrantRecord] = {}
        self._groups: Dict[str, Set[str]] = {}
        self._superusers: Set[str] = {"admin"}

    # ------------------------------------------------------------------
    # Principals
    # ------------------------------------------------------------------
    def add_superuser(self, user: str) -> None:
        self._superusers.add(user.lower())

    def is_superuser(self, user: str) -> bool:
        return user.lower() in self._superusers

    def create_group(self, group: str, members: Optional[Iterable[str]] = None) -> None:
        key = group.lower()
        if key in self._groups:
            raise AuthorizationError(f"group {group!r} already exists")
        self._groups[key] = {member.lower() for member in (members or [])}

    def add_to_group(self, group: str, user: str) -> None:
        key = group.lower()
        if key not in self._groups:
            raise AuthorizationError(f"group {group!r} does not exist")
        self._groups[key].add(user.lower())

    def remove_from_group(self, group: str, user: str) -> None:
        key = group.lower()
        if key not in self._groups:
            raise AuthorizationError(f"group {group!r} does not exist")
        self._groups[key].discard(user.lower())

    def groups_of(self, user: str) -> Set[str]:
        lowered = user.lower()
        return {group for group, members in self._groups.items() if lowered in members}

    def is_member(self, user: str, principal: str) -> bool:
        """True when ``user`` is ``principal`` itself or a member of that group."""
        lowered, principal = user.lower(), principal.lower()
        if lowered == principal:
            return True
        return principal in self._groups and lowered in self._groups[principal]

    # ------------------------------------------------------------------
    # Grants
    # ------------------------------------------------------------------
    def grant(self, privileges: Iterable[str], table: str, grantee: str) -> List[GrantRecord]:
        records = []
        for privilege in privileges:
            privilege = privilege.upper()
            if privilege not in PRIVILEGES:
                raise AuthorizationError(f"unknown privilege {privilege!r}")
            record = GrantRecord(privilege, table, grantee)
            self._grants[record.key()] = record
            records.append(record)
        return records

    def revoke(self, privileges: Iterable[str], table: str, grantee: str) -> int:
        removed = 0
        for privilege in privileges:
            key = (privilege.upper(), table.lower(), grantee.lower())
            if key in self._grants:
                del self._grants[key]
                removed += 1
        return removed

    def grants_for(self, table: Optional[str] = None) -> List[GrantRecord]:
        records = list(self._grants.values())
        if table is not None:
            records = [r for r in records if r.table.lower() == table.lower()]
        return sorted(records, key=lambda r: r.key())

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def has_privilege(self, user: str, privilege: str, table: str) -> bool:
        if self.is_superuser(user):
            return True
        privilege = privilege.upper()
        table = table.lower()
        principals = {user.lower()} | self.groups_of(user) | {"public"}
        for candidate_privilege in (privilege, "ALL"):
            for principal in principals:
                if (candidate_privilege, table, principal) in self._grants:
                    return True
        return False

    def check(self, user: str, privilege: str, table: str) -> None:
        """Raise :class:`AuthorizationError` when the privilege is missing."""
        if not self.has_privilege(user, privilege, table):
            raise AuthorizationError(
                f"user {user!r} lacks {privilege.upper()} privilege on table {table!r}"
            )
