"""Catalog package: schemas, stored tables, statistics, and the catalog."""

from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.catalog.statistics import (
    ColumnStatistics,
    StatisticsManager,
    TableStatistics,
)
from repro.catalog.table import Table

__all__ = [
    "SystemCatalog",
    "Column",
    "TableSchema",
    "Table",
    "ColumnStatistics",
    "StatisticsManager",
    "TableStatistics",
]
