"""Catalog package: schemas, stored tables, and the system catalog."""

from repro.catalog.catalog import SystemCatalog
from repro.catalog.schema import Column, TableSchema
from repro.catalog.table import Table

__all__ = ["SystemCatalog", "Column", "TableSchema", "Table"]
