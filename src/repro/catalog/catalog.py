"""System catalog: the directory of user tables and their physical objects.

The catalog owns the buffer pool and hands out :class:`Table` objects.  The
annotation, provenance, dependency, and authorization managers register their
metadata with their own managers but use the catalog to resolve table and
column names, which keeps name resolution in a single place.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.catalog.schema import Column, TableSchema
from repro.catalog.statistics import StatisticsManager
from repro.catalog.table import Table
from repro.core.errors import CatalogError
from repro.storage.buffer_pool import BufferPool, DEFAULT_POOL_SIZE
from repro.storage.disk import DiskManager, InMemoryDiskManager


class SystemCatalog:
    """Name -> table directory plus the shared storage objects."""

    def __init__(self, disk: Optional[DiskManager] = None,
                 pool_size: int = DEFAULT_POOL_SIZE):
        self.disk = disk or InMemoryDiskManager()
        self.pool = BufferPool(self.disk, pool_size)
        self._tables: Dict[str, Table] = {}
        #: Monotone counter bumped by everything that can change what a
        #: *plan* means: table DDL, index DDL (via :class:`IndexManager`),
        #: and statistics refreshes (ANALYZE, including auto-refresh).  The
        #: engine's plan cache records the version each plan was built under
        #: and drops entries whose version no longer matches, so a cached
        #: plan can never survive a dropped index or refreshed statistics.
        self.schema_version = 0
        #: Planner statistics (row counts, NDV, histograms); see ANALYZE.
        self.statistics = StatisticsManager(self)
        #: The transaction manager acting as DDL/DML journal (attached by
        #: ``Database``/``Engine``; ``None`` for a standalone catalog).
        #: Tables capture it at creation so their row mutations report redo
        #: and undo images; CREATE/DROP TABLE report here directly.
        self.journal = None

    def bump_schema_version(self) -> int:
        """Invalidate cached plans (called on DDL and statistics changes)."""
        self.schema_version += 1
        return self.schema_version

    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, self.pool, journal=self.journal,
                      version_source=lambda: self.schema_version)
        self._tables[key] = table
        self.bump_schema_version()
        if self.journal is not None:
            self.journal.note_create_table(schema)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        table = self._tables.pop(key)
        self.statistics.drop(name)
        self.pool.decoded.invalidate_table(table.name)
        self.bump_schema_version()
        if self.journal is not None:
            self.journal.note_drop_table(name)

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def table_names(self) -> List[str]:
        return sorted(table.name for table in self._tables.values())

    def tables(self) -> Iterator[Table]:
        for name in sorted(self._tables):
            yield self._tables[name]

    # ------------------------------------------------------------------
    def resolve_column(self, table_name: str, column_name: str) -> Column:
        return self.table(table_name).schema.column(column_name)

    def io_statistics(self):
        """Convenience accessor for the disk manager's I/O counters."""
        return self.disk.stats
