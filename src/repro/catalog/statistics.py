"""Table and column statistics backing the cost-based join planner.

The statistics manager maintains, per table, the row count and per-column
summaries (number of distinct values, min/max, null fraction, and an
equi-width histogram for numeric columns).  Statistics are computed by an
``ANALYZE``-style full scan and kept approximately fresh: every DML statement
bumps a staleness counter and adjusts the cached row count, and once the
number of modifications since the last scan crosses a threshold the next
statistics access re-analyzes the table automatically.

Estimation follows the classic System-R rules: equality selects ``1/NDV``,
ranges interpolate between the column min and max (refined by the histogram
when one is available), and unknown predicates default to ``1/3``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sql import ast

#: Selectivity assumed for predicates the estimator cannot analyse.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Selectivity assumed for LIKE patterns.
LIKE_SELECTIVITY = 0.25
#: Number of buckets of the equi-width histograms on numeric columns.
HISTOGRAM_BUCKETS = 32
#: Re-analyze automatically once modifications exceed
#: ``max(AUTO_REFRESH_MIN_DML, AUTO_REFRESH_FRACTION * row_count)``.
AUTO_REFRESH_MIN_DML = 64
AUTO_REFRESH_FRACTION = 0.2


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column."""

    low: float
    high: float
    counts: List[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of values strictly below ``value``."""
        if self.high <= self.low:
            return 0.0 if value <= self.low else 1.0
        if value <= self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        total = self.total
        if total == 0:
            return 0.0
        width = (self.high - self.low) / len(self.counts)
        bucket = min(int((value - self.low) / width), len(self.counts) - 1)
        below = sum(self.counts[:bucket])
        inside = self.counts[bucket] * ((value - (self.low + bucket * width)) / width)
        return (below + inside) / total


@dataclass
class ColumnStatistics:
    """Summary of one column, computed by :meth:`StatisticsManager.analyze`."""

    name: str
    distinct: int = 0
    null_count: int = 0
    minimum: Any = None
    maximum: Any = None
    histogram: Optional[Histogram] = None

    def null_fraction(self, row_count: int) -> float:
        return self.null_count / row_count if row_count else 0.0


@dataclass
class TableStatistics:
    """Statistics of one table as of the last ANALYZE."""

    table: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)
    #: Incremented on every re-analysis, so plans can record stats versions.
    version: int = 1

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())


class StatisticsManager:
    """Maintains and serves per-table statistics for the planner."""

    def __init__(self, catalog, auto_refresh: bool = True):
        self._catalog = catalog
        self._stats: Dict[str, TableStatistics] = {}
        self._dml_since_analyze: Dict[str, int] = {}
        self.auto_refresh = auto_refresh
        #: Guards the staleness counters: parallel spill workers may touch
        #: planner statistics concurrently with the main thread's DML
        #: bookkeeping, and ``dict.get`` + ``=`` is not atomic.
        self._dml_lock = threading.Lock()

    # ------------------------------------------------------------------
    # ANALYZE
    # ------------------------------------------------------------------
    def analyze(self, table_name: str) -> TableStatistics:
        """Full-scan ``table_name`` and rebuild its statistics."""
        table = self._catalog.table(table_name)
        key = table.name.lower()
        names = table.schema.column_names
        values_per_column: List[List[Any]] = [[] for _ in names]
        nulls = [0 for _ in names]
        row_count = 0
        for _, row in table.scan():
            row_count += 1
            for position, value in enumerate(row):
                if value is None:
                    nulls[position] += 1
                else:
                    values_per_column[position].append(value)
        previous = self._stats.get(key)
        stats = TableStatistics(table.name, row_count,
                                version=(previous.version + 1) if previous else 1)
        for position, name in enumerate(names):
            stats.columns[name.lower()] = self._column_statistics(
                name, values_per_column[position], nulls[position])
        self._stats[key] = stats
        self._dml_since_analyze[key] = 0
        # Fresh statistics change cardinality estimates, so any cached plan
        # built against the old numbers must be re-planned.
        self._catalog.bump_schema_version()
        return stats

    def analyze_all(self) -> Dict[str, TableStatistics]:
        return {name: self.analyze(name) for name in self._catalog.table_names()}

    @staticmethod
    def _column_statistics(name: str, values: List[Any], nulls: int) -> ColumnStatistics:
        stats = ColumnStatistics(name, null_count=nulls)
        if not values:
            return stats
        try:
            stats.distinct = len(set(values))
        except TypeError:
            stats.distinct = len(values)
        numeric = [v for v in values
                   if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if len(numeric) == len(values):
            # NaN and +/-inf poison min/max bounds and int() bucket
            # arithmetic; keep them out of the summaries (they still count
            # towards NDV).
            finite = [v for v in numeric if math.isfinite(v)]
            if finite:
                stats.minimum, stats.maximum = min(finite), max(finite)
                stats.histogram = StatisticsManager._build_histogram(finite)
        else:
            try:
                stats.minimum, stats.maximum = min(values), max(values)
            except TypeError:
                pass
        return stats

    @staticmethod
    def _build_histogram(values: List[float]) -> Optional[Histogram]:
        low, high = float(min(values)), float(max(values))
        if high <= low:
            return Histogram(low, high, [len(values)])
        buckets = min(HISTOGRAM_BUCKETS, max(1, len(values) // 2))
        counts = [0] * buckets
        width = (high - low) / buckets
        for value in values:
            counts[min(int((value - low) / width), buckets - 1)] += 1
        return Histogram(low, high, counts)

    # ------------------------------------------------------------------
    # DML bookkeeping
    # ------------------------------------------------------------------
    def on_insert(self, table_name: str, count: int = 1) -> None:
        self._note_dml(table_name, count, row_delta=count)

    def on_delete(self, table_name: str, count: int = 1) -> None:
        self._note_dml(table_name, count, row_delta=-count)

    def on_update(self, table_name: str, count: int = 1) -> None:
        self._note_dml(table_name, count, row_delta=0)

    def _note_dml(self, table_name: str, count: int, row_delta: int) -> None:
        key = table_name.lower()
        stats = self._stats.get(key)
        if stats is None:
            return
        with self._dml_lock:
            stats.row_count = max(0, stats.row_count + row_delta)
            self._dml_since_analyze[key] = \
                self._dml_since_analyze.get(key, 0) + count

    def drop(self, table_name: str) -> None:
        self._stats.pop(table_name.lower(), None)
        self._dml_since_analyze.pop(table_name.lower(), None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def stats_for(self, table_name: str) -> Optional[TableStatistics]:
        """Statistics of a table, transparently re-analyzed when stale.

        Staleness combines the DML counter (engine statements) with the
        drift between the recorded and live row counts, so bulk loads that
        bypass the engine (direct ``Table.insert_row`` calls) still trigger
        a refresh.
        """
        key = table_name.lower()
        stats = self._stats.get(key)
        if stats is None:
            return None
        stale = self._dml_since_analyze.get(key, 0)
        drift = abs(len(self._catalog.table(table_name)) - stats.row_count)
        threshold = max(AUTO_REFRESH_MIN_DML,
                        AUTO_REFRESH_FRACTION * max(1, stats.row_count))
        if self.auto_refresh and max(stale, drift) > threshold:
            return self.analyze(table_name)
        return stats

    def row_count_estimate(self, table_name: str) -> int:
        """Live row count (O(1) from the table directory, always exact)."""
        return len(self._catalog.table(table_name))

    def distinct_estimate(self, table_name: str, column: str) -> int:
        """NDV of a column; falls back to ``max(1, rows / 10)`` without stats."""
        stats = self.stats_for(table_name)
        if stats is not None:
            cs = stats.column(column)
            if cs is not None and cs.distinct:
                return cs.distinct
        rows = self.row_count_estimate(table_name)
        return max(1, rows // 10)

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------
    def estimate_scan_rows(self, table_name: str,
                           conjuncts: Sequence[ast.Expression],
                           qualifier: Optional[str] = None) -> float:
        """Estimated output rows of a scan after applying ``conjuncts``."""
        rows = self.row_count_estimate(table_name)
        if not conjuncts:
            return float(rows)
        # A primary-key equality pins the scan to at most one row regardless
        # of the per-conjunct estimates.
        if self._has_primary_key_lookup(table_name, conjuncts, qualifier):
            return min(1.0, float(rows))
        selectivity = self.selectivity(table_name, conjuncts, qualifier)
        return max(0.0, rows * selectivity)

    def _has_primary_key_lookup(self, table_name: str,
                                conjuncts: Sequence[ast.Expression],
                                qualifier: Optional[str]) -> bool:
        from repro.planner.planner import equality_lookups, lookup_value
        table = self._catalog.table(table_name)
        pk_columns = table.schema.primary_key_columns
        if not pk_columns:
            return False
        lookups = equality_lookups(conjuncts)
        sentinel = object()
        return all(
            lookup_value(lookups, column, qualifier, sentinel) is not sentinel
            for column in pk_columns
        )

    def selectivity(self, table_name: str,
                    conjuncts: Sequence[ast.Expression],
                    qualifier: Optional[str] = None) -> float:
        stats = self.stats_for(table_name)
        result = 1.0
        for conjunct in conjuncts:
            result *= self._conjunct_selectivity(table_name, stats, conjunct,
                                                 qualifier)
        return min(1.0, max(0.0, result))

    def _conjunct_selectivity(self, table_name: str,
                              stats: Optional[TableStatistics],
                              conjunct: ast.Expression,
                              qualifier: Optional[str]) -> float:
        column, op, literal = _column_literal_comparison(conjunct)
        if column is not None:
            if (qualifier is not None and column.table is not None
                    and column.table.lower() != qualifier.lower()):
                # The conjunct belongs to a different table of the join; it
                # cannot restrict this scan.
                return 1.0
            cs = stats.column(column.name) if stats is not None else None
            if op in ("=", "<>"):
                ndv = cs.distinct if cs is not None and cs.distinct else \
                    self.distinct_estimate(table_name, column.name)
                equal = 1.0 / max(1, ndv)
                return equal if op == "=" else 1.0 - equal
            if op in ("<", "<=", ">", ">=") and cs is not None:
                return _range_selectivity(cs, op, literal)
            return DEFAULT_SELECTIVITY
        if isinstance(conjunct, ast.Between):
            low = self._conjunct_selectivity(
                table_name, stats,
                ast.BinaryOp(">=", conjunct.operand, conjunct.low), qualifier)
            high = self._conjunct_selectivity(
                table_name, stats,
                ast.BinaryOp("<=", conjunct.operand, conjunct.high), qualifier)
            fraction = max(0.0, low + high - 1.0)
            return 1.0 - fraction if conjunct.negated else fraction
        if isinstance(conjunct, ast.InList) and isinstance(conjunct.operand, ast.ColumnRef):
            ndv = self.distinct_estimate(table_name, conjunct.operand.name)
            fraction = min(1.0, len(conjunct.items) / max(1, ndv))
            return 1.0 - fraction if conjunct.negated else fraction
        if isinstance(conjunct, ast.IsNull) and isinstance(conjunct.operand, ast.ColumnRef):
            if stats is not None:
                cs = stats.column(conjunct.operand.name)
                if cs is not None:
                    fraction = cs.null_fraction(stats.row_count)
                    return 1.0 - fraction if conjunct.negated else fraction
            return DEFAULT_SELECTIVITY
        if isinstance(conjunct, ast.Like):
            return LIKE_SELECTIVITY
        return DEFAULT_SELECTIVITY


#: Stand-in for the value of a parameter placeholder: the comparison shape is
#: known at plan time but the value is not, so equality still uses ``1/NDV``
#: (value-independent) while range estimates fall back to
#: :data:`DEFAULT_SELECTIVITY` (``_range_selectivity`` treats any non-numeric
#: "literal" that way).
UNKNOWN_VALUE = object()

_COMPARABLE_RHS = (ast.Literal, ast.Parameter)


def _comparable_value(expr: ast.Expression) -> Any:
    return expr.value if isinstance(expr, ast.Literal) else UNKNOWN_VALUE


def _column_literal_comparison(
    conjunct: ast.Expression,
) -> Tuple[Optional[ast.ColumnRef], Optional[str], Any]:
    """Decompose ``column <op> literal-or-parameter`` comparisons.

    A parameter placeholder yields :data:`UNKNOWN_VALUE` — the estimator
    then uses only value-independent rules (NDV for equality, defaults for
    ranges), which is the classic "generic plan" behaviour of prepared
    statements.
    """
    if not isinstance(conjunct, ast.BinaryOp):
        return None, None, None
    if conjunct.op not in ("=", "<>", "<", "<=", ">", ">="):
        return None, None, None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ast.ColumnRef) and isinstance(right, _COMPARABLE_RHS):
        return left, conjunct.op, _comparable_value(right)
    if isinstance(right, ast.ColumnRef) and isinstance(left, _COMPARABLE_RHS):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return right, flipped.get(conjunct.op, conjunct.op), _comparable_value(left)
    return None, None, None


def _range_selectivity(cs: ColumnStatistics, op: str, literal: Any) -> float:
    if not isinstance(literal, (int, float)) or isinstance(literal, bool):
        return DEFAULT_SELECTIVITY
    if cs.histogram is not None:
        below = cs.histogram.fraction_below(float(literal))
    elif (isinstance(cs.minimum, (int, float)) and isinstance(cs.maximum, (int, float))
          and cs.maximum > cs.minimum):
        below = (float(literal) - cs.minimum) / (cs.maximum - cs.minimum)
        below = min(1.0, max(0.0, below))
    else:
        return DEFAULT_SELECTIVITY
    # ``below`` approximates the strictly-below mass; inclusive bounds add
    # one equality quantum so skewed low-NDV columns are not undercounted.
    equal = 1.0 / cs.distinct if cs.distinct else 0.0
    if op == "<":
        result = below
    elif op == "<=":
        result = below + equal
    elif op == ">=":
        result = 1.0 - below
    else:  # ">"
        result = 1.0 - below - equal
    return min(1.0, max(0.0, result))
