"""The Table object: schema + heap file + primary-key directory.

A table keeps a logical *tuple id* for every row.  Tuple ids are the stable
handles used across the system:

* the annotation manager addresses cells as ``(table, tuple_id, column)``,
* the dependency tracker's outdated bitmaps are keyed by tuple id,
* the approval log records inverse statements against tuple ids,
* provenance records reference tuple ids.

Physically, rows live in a heap file addressed by record ids; the table keeps
the tuple-id -> record-id directory and an optional unique index on the
primary key.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.core.errors import CatalogError, ConstraintViolationError
from repro.storage.buffer_pool import BufferPool
from repro.storage.heap_file import HeapFile
from repro.storage.page import RecordId
from repro.types.values import values_equal


class Table:
    """A stored user relation."""

    def __init__(self, schema: TableSchema, pool: BufferPool,
                 journal: Optional[Any] = None,
                 version_source: Optional[Callable[[], int]] = None):
        self.schema = schema
        self.pool = pool
        self.heap = HeapFile(pool)
        #: Supplies the catalog's ``schema_version`` for decoded-page cache
        #: keys; a standalone table pins version 0 (still correct — DML
        #: invalidation goes through the page-dirty path, not the version).
        self._version_source = version_source
        #: The transaction manager acting as mutation journal (see
        #: :mod:`repro.core.transactions`), or ``None`` for a standalone
        #: table.  Every committed-path mutation reports its after-image
        #: (redo) and before-image (undo) through it.
        self.journal = journal
        #: tuple_id -> record id in the heap file
        self._directory: Dict[int, RecordId] = {}
        #: primary key value(s) -> tuple_id, maintained when a PK is declared
        self._pk_index: Dict[Tuple[Any, ...], int] = {}
        #: names of secondary indexes attached to this table (managed elsewhere)
        self.secondary_indexes: List[str] = []
        #: While True, physical (page, slot) order equals tuple-id order:
        #: inserts append monotonically increasing tuple ids at the heap tail
        #: and deletes only remove rows.  Only an UPDATE that relocates a
        #: record (grown row moved to the tail) breaks the invariant; batched
        #: scans then fall back to the directory-ordered path.
        self._page_order_is_tid_order = True

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._directory)

    @property
    def tuple_ids(self) -> List[int]:
        return sorted(self._directory)

    def _pk_value(self, row: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        pk_columns = self.schema.primary_key_columns
        if not pk_columns:
            return None
        return tuple(row[self.schema.column_position(c)] for c in pk_columns)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert_row(self, values: Dict[str, Any]) -> int:
        """Insert a row given as a column->value mapping; returns the tuple id."""
        row = self.schema.coerce_row(values)
        return self._insert_coerced(row)

    def insert_positional(self, values: Sequence[Any]) -> int:
        row = self.schema.coerce_positional(values)
        return self._insert_coerced(row)

    def _insert_coerced(self, row: Tuple[Any, ...]) -> int:
        pk = self._pk_value(row)
        if pk is not None:
            if pk in self._pk_index:
                raise ConstraintViolationError(
                    f"duplicate primary key {pk!r} in table {self.name!r}"
                )
        tuple_id, record_id = self.heap.insert(row)
        self._directory[tuple_id] = record_id
        if pk is not None:
            self._pk_index[pk] = tuple_id
        if self.journal is not None:
            self.journal.note_row_insert(self, tuple_id, row)
        return tuple_id

    def update_row(self, tuple_id: int, changes: Dict[str, Any]) -> Tuple[Any, ...]:
        """Apply ``changes`` to the row with ``tuple_id``; returns the new row."""
        old_row = self.read_row(tuple_id)
        new_values = dict(zip(self.schema.column_names, old_row))
        for key, value in changes.items():
            self.schema.column(key)  # validates the column exists
            new_values[key] = value
        new_row = self.schema.coerce_row(new_values)
        old_pk, new_pk = self._pk_value(old_row), self._pk_value(new_row)
        if new_pk is not None and new_pk != old_pk and new_pk in self._pk_index:
            raise ConstraintViolationError(
                f"duplicate primary key {new_pk!r} in table {self.name!r}"
            )
        self._store_update(tuple_id, old_pk, new_pk, new_row)
        if self.journal is not None:
            self.journal.note_row_update(self, tuple_id, old_row, new_row)
        return new_row

    def delete_row(self, tuple_id: int) -> Tuple[Any, ...]:
        """Delete the row with ``tuple_id``; returns the deleted row."""
        row = self.read_row(tuple_id)
        record_id = self._directory.pop(tuple_id)
        self.heap.delete(record_id)
        pk = self._pk_value(row)
        if pk is not None:
            self._pk_index.pop(pk, None)
        if self.journal is not None:
            self.journal.note_row_delete(self, tuple_id, row)
        return row

    def _store_update(self, tuple_id: int, old_pk, new_pk,
                      new_row: Tuple[Any, ...]) -> None:
        record_id = self._directory[tuple_id]
        new_record_id = self.heap.update(record_id, new_row, tuple_id)
        if new_record_id != record_id:
            self._page_order_is_tid_order = False
        self._directory[tuple_id] = new_record_id
        if old_pk != new_pk:
            if old_pk is not None:
                self._pk_index.pop(old_pk, None)
            if new_pk is not None:
                self._pk_index[new_pk] = tuple_id

    # ------------------------------------------------------------------
    # Raw appliers (transaction undo and WAL replay)
    # ------------------------------------------------------------------
    # These re-apply already-validated images: no coercion, no constraint
    # checks, and no journaling (the transaction manager suppresses its
    # hooks while using them), but full directory / primary-key upkeep.
    def apply_insert(self, tuple_id: int, row: Sequence[Any]) -> None:
        """Insert ``row`` under a forced ``tuple_id`` (replay / undo-delete)."""
        row = tuple(row)
        _, record_id = self.heap.insert(row, tuple_id)
        self._directory[tuple_id] = record_id
        pk = self._pk_value(row)
        if pk is not None:
            self._pk_index[pk] = tuple_id

    def apply_update(self, tuple_id: int, new_row: Sequence[Any]) -> None:
        """Overwrite the stored image of ``tuple_id`` with ``new_row``."""
        new_row = tuple(new_row)
        old_row = self.read_row(tuple_id)
        self._store_update(tuple_id, self._pk_value(old_row),
                           self._pk_value(new_row), new_row)

    def apply_delete(self, tuple_id: int) -> None:
        """Remove ``tuple_id`` physically (replay / undo-insert)."""
        row = self.read_row(tuple_id)
        self.heap.delete(self._directory.pop(tuple_id))
        pk = self._pk_value(row)
        if pk is not None:
            self._pk_index.pop(pk, None)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_row(self, tuple_id: int) -> Tuple[Any, ...]:
        if tuple_id not in self._directory:
            raise CatalogError(f"table {self.name!r} has no tuple {tuple_id}")
        stored_id, values = self.heap.read(self._directory[tuple_id])
        if stored_id != tuple_id:
            raise CatalogError(
                f"directory corruption in table {self.name!r}: expected tuple "
                f"{tuple_id}, found {stored_id}"
            )
        return values

    def has_tuple(self, tuple_id: int) -> bool:
        return tuple_id in self._directory

    def read_cell(self, tuple_id: int, column: str) -> Any:
        row = self.read_row(tuple_id)
        return row[self.schema.column_position(column)]

    def scan(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield ``(tuple_id, row)`` in tuple-id order."""
        for tuple_id in sorted(self._directory):
            yield tuple_id, self.read_row(tuple_id)

    def scan_batches(self, with_tuple_ids: bool = True) -> Iterator[List[Any]]:
        """Yield row lists in tuple-id order, page at a time.

        Observationally equivalent to :meth:`scan` (same rows, same order)
        but decodes whole pages with the vectorized record decoder, which is
        the storage half of the batched executor's speedup.  Elements are
        ``(tuple_id, values)`` pairs, or bare value tuples when
        ``with_tuple_ids`` is False.  While the physical order still matches
        tuple-id order (the common, append-only case) pages stream straight
        through; after a record relocation the scan falls back to directory
        order with a per-page decode cache.
        """
        if self._page_order_is_tid_order:
            cache = self.pool.decoded
            version = (self._version_source()
                       if self._version_source is not None else 0)
            name = self.name
            for page_id in self.heap.page_ids:
                decoded = cache.get(name, page_id, version, with_tuple_ids)
                if decoded is None:
                    decoded = self.heap.scan_page_rows(page_id, with_tuple_ids)
                    cache.put(name, page_id, version, with_tuple_ids, decoded)
                if decoded:
                    yield decoded
            return
        cached_page_id: Optional[int] = None
        cached: Dict[int, Tuple[int, Tuple[Any, ...]]] = {}
        batch: List[Any] = []
        for tuple_id in sorted(self._directory):
            record_id = self._directory[tuple_id]
            if record_id.page_id != cached_page_id:
                cached = {slot: (stored_id, values)
                          for slot, stored_id, values
                          in self.heap.scan_page(record_id.page_id)}
                cached_page_id = record_id.page_id
            entry = cached[record_id.slot]
            batch.append(entry if with_tuple_ids else entry[1])
            if len(batch) >= 256:
                yield batch
                batch = []
        if batch:
            yield batch

    def lookup_primary_key(self, key: Sequence[Any]) -> Optional[int]:
        """Return the tuple id of the row with the given primary key, if any."""
        if not self.schema.primary_key_columns:
            return None
        return self._pk_index.get(tuple(key))

    def find_tuples(self, column: str, value: Any) -> List[int]:
        """Return tuple ids whose ``column`` equals ``value`` (sequential scan)."""
        position = self.schema.column_position(column)
        matches = []
        for tuple_id, row in self.scan():
            if values_equal(row[position], value):
                matches.append(tuple_id)
        return matches

    def rows_as_dicts(self) -> List[Dict[str, Any]]:
        names = self.schema.column_names
        return [dict(zip(names, row)) for _, row in self.scan()]

    def num_pages(self) -> int:
        return self.heap.num_pages()
