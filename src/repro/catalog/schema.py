"""Relational schema objects: columns and table schemas.

The schema layer is intentionally small: named, typed columns with NOT NULL
and PRIMARY KEY constraints, plus a DEFAULT value.  It also knows how to
coerce an incoming row to the declared types, which is the single funnel all
inserts and updates pass through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CatalogError, TypeMismatchError
from repro.types.datatypes import DataType, coerce


@dataclass
class Column:
    """A single column declaration."""

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.primary_key:
            # Primary key columns are implicitly NOT NULL, as in SQL.
            self.nullable = False

    def coerce(self, value: Any) -> Any:
        if value is None and self.default is not None:
            value = self.default
        return coerce(value, self.dtype, nullable=self.nullable)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dtype": self.dtype.value,
            "nullable": self.nullable,
            "primary_key": self.primary_key,
            "default": self.default,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Column":
        return cls(
            name=data["name"],
            dtype=DataType(data["dtype"]),
            nullable=data.get("nullable", True),
            primary_key=data.get("primary_key", False),
            default=data.get("default"),
        )


class TableSchema:
    """An ordered collection of columns with name-based lookup."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        names = [column.name.lower() for column in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: List[Column] = list(columns)
        self._index: Dict[str, int] = {c.name.lower(): i for i, c in enumerate(columns)}

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> List[str]:
        return [column.name for column in self.columns if column.primary_key]

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index[name.lower()]]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def column_position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    # ------------------------------------------------------------------
    def coerce_row(self, values: Dict[str, Any]) -> Tuple[Any, ...]:
        """Build a full positional row from a (possibly partial) dict of values."""
        unknown = [key for key in values if key.lower() not in self._index]
        if unknown:
            raise CatalogError(
                f"table {self.name!r} has no column(s): {', '.join(sorted(unknown))}"
            )
        lowered = {key.lower(): value for key, value in values.items()}
        row: List[Any] = []
        for column in self.columns:
            provided = lowered.get(column.name.lower())
            try:
                row.append(column.coerce(provided))
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"column {self.name}.{column.name}: {exc}"
                ) from exc
        return tuple(row)

    def coerce_positional(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        if len(values) != len(self.columns):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row: List[Any] = []
        for column, value in zip(self.columns, values):
            try:
                row.append(column.coerce(value))
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"column {self.name}.{column.name}: {exc}"
                ) from exc
        return tuple(row)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "columns": [column.to_dict() for column in self.columns],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TableSchema":
        return cls(data["name"], [Column.from_dict(c) for c in data["columns"]])

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"
