"""E3 — Figures 4, 6, 7: the A-SQL command surface.

Exercises every A-SQL construct end-to-end (CREATE/DROP ANNOTATION TABLE,
ADD/ARCHIVE/RESTORE ANNOTATION, and the SELECT extensions ANNOTATION,
PROMOTE, AWHERE, AHAVING, FILTER), reports the result and annotation
cardinalities per operator, and times the annotated SELECT pipeline.
"""

from __future__ import annotations

import pytest

from bench_utils import make_db, print_table
from repro.workloads import build_gene_tables

NUM_GENES = 80


@pytest.fixture(scope="module")
def loaded():
    db = make_db()
    build_gene_tables(db, num_genes=NUM_GENES, overlap=0.4, seed=29)
    return db


QUERIES = {
    "ANNOTATION": "SELECT GID, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)",
    "PROMOTE": "SELECT GID PROMOTE (GSequence) FROM DB1_Gene ANNOTATION(GAnnotation)",
    "AWHERE": ("SELECT GID FROM DB1_Gene ANNOTATION(GAnnotation) "
               "AWHERE annotation.value LIKE '%RegulonDB%'"),
    "FILTER": ("SELECT GID, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) "
               "FILTER annotation.value LIKE '%published%'"),
    "AHAVING": ("SELECT GName, COUNT(*) FROM DB1_Gene ANNOTATION(GAnnotation) "
                "GROUP BY GName "
                "AHAVING annotation.value LIKE '%methyltransferase%'"),
}


def annotation_count(result):
    return sum(len(row.all_annotations()) for row in result.rows)


def test_asql_operator_cardinalities(loaded):
    db = loaded
    rows = []
    results = {}
    for name, sql in QUERIES.items():
        result = db.query(sql)
        results[name] = result
        rows.append([name, len(result), annotation_count(result)])
    print_table("E3/Figure 7 — A-SQL SELECT operators",
                ["operator", "tuples", "annotations propagated"], rows)
    # Shape checks: ANNOTATION propagates, projection drops, PROMOTE restores,
    # AWHERE selects by annotation, FILTER keeps tuples but trims annotations.
    assert annotation_count(results["ANNOTATION"]) > 0
    assert annotation_count(results["PROMOTE"]) > 0
    assert len(results["AWHERE"]) == NUM_GENES          # A2 covers every DB1 gene
    assert len(results["FILTER"]) == NUM_GENES
    assert annotation_count(results["FILTER"]) < annotation_count(results["ANNOTATION"])
    assert len(results["AHAVING"]) == 1


def test_archive_restore_roundtrip_counts(loaded):
    db = loaded
    archived = db.execute(
        "ARCHIVE ANNOTATION FROM DB1_Gene.GAnnotation ON (SELECT G.* FROM DB1_Gene G)"
    )
    after_archive = db.query(QUERIES["ANNOTATION"])
    restored = db.execute(
        "RESTORE ANNOTATION FROM DB1_Gene.GAnnotation ON (SELECT G.* FROM DB1_Gene G)"
    )
    after_restore = db.query(QUERIES["ANNOTATION"])
    print_table("E3/Figure 6 — ARCHIVE / RESTORE",
                ["step", "annotations archived/restored", "annotations propagated"],
                [["archive", archived.rows_affected, annotation_count(after_archive)],
                 ["restore", restored.rows_affected, annotation_count(after_restore)]])
    assert annotation_count(after_archive) == 0
    assert annotation_count(after_restore) > 0
    assert archived.rows_affected == restored.rows_affected


def test_bench_annotated_select(benchmark, loaded):
    db = loaded
    result = benchmark(db.query, QUERIES["ANNOTATION"])
    assert len(result) == NUM_GENES


def test_bench_plain_select_baseline(benchmark, loaded):
    db = loaded
    result = benchmark(db.query, "SELECT GID, GSequence FROM DB1_Gene")
    assert len(result) == NUM_GENES


def test_bench_awhere(benchmark, loaded):
    db = loaded
    result = benchmark(db.query, QUERIES["AWHERE"])
    assert len(result) == NUM_GENES
