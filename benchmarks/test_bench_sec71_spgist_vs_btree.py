"""E7 — Section 7.1: SP-GiST instantiations vs the B+-tree (and R-tree).

The paper cites experiments showing the performance potential of
space-partitioning indexes over the B+-tree and R-tree for exact-match,
prefix, regular-expression, and k-NN queries.  This benchmark indexes gene
identifiers (strings) and protein-structure points under each access method,
reports logical node accesses per operation, and asserts the qualitative
shape: the trie serves prefix/regex queries the B+-tree must answer by a
scan, and the kd-tree/quadtree serve box and k-NN queries a one-dimensional
index cannot.
"""

from __future__ import annotations

import random
import re

import pytest

from bench_utils import print_table
from repro.index.btree import BPlusTree
from repro.index.rtree import Rect, RTree
from repro.index.spgist import (
    BoxQuery,
    KdTreeModule,
    QuadtreeModule,
    SpGistIndex,
    TrieModule,
)
from repro.workloads import structure_points

NUM_STRINGS = 2000
NUM_POINTS = 2000


@pytest.fixture(scope="module")
def string_indexes():
    keys = [f"JW{i:05d}" for i in range(NUM_STRINGS)]
    random.Random(3).shuffle(keys)
    trie = SpGistIndex(TrieModule(), leaf_capacity=8)
    btree = BPlusTree(order=32)
    for position, key in enumerate(keys):
        trie.insert(key, position)
        btree.insert(key, position)
    return keys, trie, btree


@pytest.fixture(scope="module")
def point_indexes():
    points = structure_points(NUM_POINTS, seed=8)
    kd = SpGistIndex(KdTreeModule(2), leaf_capacity=8)
    quad = SpGistIndex(QuadtreeModule(), leaf_capacity=8)
    rtree = RTree(max_entries=16)
    for position, point in enumerate(points):
        kd.insert(point, position)
        quad.insert(point, position)
        rtree.insert_point(point[0], point[1], position)
    return points, kd, quad, rtree


def _delta(stats, before):
    return stats.node_reads - before


class TestStringWorkload:
    def test_exact_prefix_regex_accesses(self, string_indexes):
        keys, trie, btree = string_indexes
        rows = []
        # Exact match.
        before_t, before_b = trie.stats.node_reads, btree.stats.node_reads
        assert trie.search_equal("JW01234") == btree.search("JW01234")
        rows.append(["exact match", _delta(trie.stats, before_t),
                     _delta(btree.stats, before_b)])
        # Prefix match: both can serve it from the index.
        before_t, before_b = trie.stats.node_reads, btree.stats.node_reads
        trie_result = {k for k, _ in trie.search_prefix("JW004")}
        btree_result = {k for k, _ in btree.prefix_search("JW004")}
        assert trie_result == btree_result and len(trie_result) == 100
        rows.append(["prefix match", _delta(trie.stats, before_t),
                     _delta(btree.stats, before_b)])
        # Regular-expression match: the B+-tree has no pruning and must scan
        # every entry; the trie prunes by the literal prefix.
        pattern = r"JW000[0-4]\d"
        before_t = trie.stats.node_reads
        trie_matches = {k for k, _ in trie.search_regex(pattern)}
        trie_reads = _delta(trie.stats, before_t)
        before_b = btree.stats.node_reads
        btree_matches = {k for k, _ in btree.range_search()
                         if re.fullmatch(pattern, k)}
        btree_reads = _delta(btree.stats, before_b)
        assert trie_matches == btree_matches and len(trie_matches) == 50
        rows.append(["regex match", trie_reads, btree_reads])
        assert trie_reads < btree_reads
        print_table(
            f"E7/Section 7.1 — node accesses over {NUM_STRINGS} gene ids",
            ["operation", "SP-GiST trie", "B+-tree"], rows,
        )

    def test_bench_trie_regex(self, benchmark, string_indexes):
        _, trie, _ = string_indexes
        benchmark(trie.search_regex, r"JW000[0-4]\d")

    def test_bench_btree_regex_scan(self, benchmark, string_indexes):
        _, _, btree = string_indexes
        pattern = re.compile(r"JW000[0-4]\d")

        def scan():
            return [k for k, _ in btree.range_search() if pattern.fullmatch(k)]

        benchmark(scan)


class TestPointWorkload:
    def test_box_and_knn_accesses(self, point_indexes):
        points, kd, quad, rtree = point_indexes
        # Centre the query box on an actual structure point so the box is
        # guaranteed to be non-empty.
        cx, cy = points[0]
        low, high = (cx - 8.0, cy - 8.0), (cx + 8.0, cy + 8.0)
        expected = sorted(i for i, (x, y) in enumerate(points)
                          if low[0] <= x <= high[0] and low[1] <= y <= high[1])
        rows = []
        before = kd.stats.node_reads
        assert sorted(v for _, v in kd.search_box(low, high)) == expected
        rows.append(["box query", "kd-tree", _delta(kd.stats, before)])
        before = quad.stats.node_reads
        assert sorted(v for _, v in quad.search_box(low, high)) == expected
        rows.append(["box query", "quadtree", _delta(quad.stats, before)])
        before = rtree.stats.node_reads
        assert sorted(v for _, v in rtree.range_search(Rect(*low, *high))) == expected
        rows.append(["box query", "R-tree", _delta(rtree.stats, before)])

        target = (cx, cy)
        brute = sorted((((x - target[0]) ** 2 + (y - target[1]) ** 2) ** 0.5, i)
                       for i, (x, y) in enumerate(points))[:10]
        expected_knn = [i for _, i in brute]
        before = kd.stats.node_reads
        assert [v for _, _, v in kd.knn(target, 10)] == expected_knn
        rows.append(["10-NN", "kd-tree", _delta(kd.stats, before)])
        before = rtree.stats.node_reads
        assert [v for _, v in rtree.knn(*target, 10)] == expected_knn
        rows.append(["10-NN", "R-tree", _delta(rtree.stats, before)])
        print_table(
            f"E7/Section 7.1 — node accesses over {NUM_POINTS} structure points",
            ["operation", "access method", "node reads"], rows,
        )

    def test_bench_kdtree_box(self, benchmark, point_indexes):
        _, kd, _, _ = point_indexes
        benchmark(kd.search_box, (20.0, 20.0), (45.0, 45.0))

    def test_bench_quadtree_box(self, benchmark, point_indexes):
        _, _, quad, _ = point_indexes
        benchmark(quad.search_box, (20.0, 20.0), (45.0, 45.0))

    def test_bench_rtree_box(self, benchmark, point_indexes):
        _, _, _, rtree = point_indexes
        benchmark(rtree.range_search, Rect(20.0, 20.0, 45.0, 45.0))

    def test_bench_kdtree_knn(self, benchmark, point_indexes):
        _, kd, _, _ = point_indexes
        benchmark(kd.knn, (50.0, 50.0), 10)
