"""E9 — Section 5 reasoning claims: procedure closure, derived rules, cycles.

Builds synthetic procedural-dependency rule sets shaped like derivation
chains (rule 1 + rule 2 => derived rule 4 in the paper) at a sweep of sizes
and measures attribute closure, procedure closure, rule derivation, and cycle
detection.
"""

from __future__ import annotations

import pytest

from bench_utils import print_table
from repro.dependencies.rules import DependencyRule, Procedure, RuleSet

CHAIN_LENGTHS = (5, 20, 50)


def build_chain(length: int, fanout: int = 2) -> RuleSet:
    """A layered rule set: column c{i} of table T{i} feeds ``fanout`` columns
    of table T{i+1}, alternating executable tools and lab experiments."""
    rules = RuleSet()
    for layer in range(length):
        executable = layer % 2 == 0
        procedure = Procedure(
            f"tool_{layer}" if executable else f"lab_{layer}",
            executable=executable,
            implementation=(lambda s, t: None) if executable else None,
        )
        for branch in range(fanout):
            rules.add(DependencyRule.create(
                name=f"r{layer}_{branch}",
                sources=[(f"T{layer}", f"c{branch}")],
                targets=[(f"T{layer + 1}", f"c{branch}")],
                procedure=procedure,
            ))
    return rules


def test_reasoning_sweep():
    rows = []
    for length in CHAIN_LENGTHS:
        rules = build_chain(length)
        closure = rules.attribute_closure([("T0", "c0")])
        tool_closure = rules.procedure_closure("tool_0")
        derived = rules.derive_chained_rules(max_depth=6)
        rows.append([length, len(rules), len(closure), len(tool_closure), len(derived)])
        # The closure of the first column reaches one column per downstream layer.
        assert len(closure) == length + 1
        # Everything downstream of tool_0 depends on it (both branches).
        assert len(tool_closure) == 2 * length
        # Chaining produces at least one derived rule per adjacent pair (bounded
        # by the derivation depth).
        assert derived
        # Chains through any lab experiment are non-executable, like rule 4.
        assert any(not rule.procedure.executable for rule in derived)
    print_table("E9/Section 5 — rule reasoning sweep",
                ["chain length", "rules", "attribute closure", "procedure closure",
                 "derived rules"], rows)


def test_cycle_detection_rejects_cyclic_rule_sets():
    rules = build_chain(10)
    with pytest.raises(Exception):
        rules.add(DependencyRule.create(
            name="back_edge",
            sources=[("T10", "c0")],
            targets=[("T0", "c0")],
            procedure=Procedure("loop"),
        ), check_cycles=True)


def test_bench_attribute_closure(benchmark):
    rules = build_chain(50)
    result = benchmark(rules.attribute_closure, [("T0", "c0")])
    assert len(result) == 51


def test_bench_procedure_closure(benchmark):
    rules = build_chain(50)
    result = benchmark(rules.procedure_closure, "tool_0")
    assert len(result) == 100


def test_bench_rule_derivation(benchmark):
    rules = build_chain(20)
    result = benchmark(rules.derive_chained_rules, 4)
    assert result


def test_bench_cycle_check(benchmark):
    rules = build_chain(50)
    assert benchmark(rules.find_cycle) is None
