"""E5 — Figures 9-10: local dependency tracking and outdated bitmaps.

Builds the Gene -> Protein -> PFunction chain plus the BLAST Evalue rule,
modifies a sweep of gene sequences, and reports how many cells were
automatically re-computed (executable procedures) vs marked outdated
(non-executable procedures), together with the raw vs RLE-compressed bitmap
sizes the paper's Figure 10 discussion calls for.
"""

from __future__ import annotations

import random

import pytest

from bench_utils import make_db, print_table
from repro.workloads import build_gene_protein_pipeline, dna_sequence

NUM_GENES = 60
MODIFY_COUNTS = (1, 5, 15, 30)


def build():
    db = make_db()
    build_gene_protein_pipeline(db, num_genes=NUM_GENES, seed=51)
    return db


def modify_genes(db, count, seed=77):
    rng = random.Random(seed)
    recomputed = outdated = 0
    for index in range(count):
        gid = f"JW{index:04d}"
        summary = db.execute(
            f"UPDATE Gene SET GSequence = '{dna_sequence(60, rng)}' WHERE GID = '{gid}'"
        )
        recomputed += len(summary.details["recomputed"])
        outdated += len(summary.details["marked_outdated"])
    return recomputed, outdated


def test_modification_sweep_shapes(capsys=None):
    rows = []
    for count in MODIFY_COUNTS:
        db = build()
        recomputed, outdated = modify_genes(db, count)
        bitmap = db.tracker.bitmap_for("Protein")
        tuple_ids = db.table("Protein").tuple_ids
        raw_bits = bitmap.raw_size_bits(len(tuple_ids))
        rle_bits = bitmap.rle_size_bits(tuple_ids)
        rows.append([count, recomputed, outdated, raw_bits, rle_bits,
                     f"{bitmap.compression_ratio(tuple_ids):.1f}x"])
        # Executable rule (prediction tool P) re-computes PSequence; the lab
        # experiment cannot run, so PFunction is marked outdated — one of each
        # per modified gene, exactly Figure 10's pattern.
        assert recomputed == count
        assert outdated == count
        assert bitmap.outdated_count() == count
    print_table(
        "E5/Figure 10 — dependency tracking after modifying K gene sequences "
        f"({NUM_GENES} genes)",
        ["genes modified", "cells recomputed", "cells marked outdated",
         "bitmap raw bits", "bitmap RLE bits", "compression"],
        rows,
    )


def test_outdated_answers_carry_warning_annotations():
    db = build()
    modify_genes(db, 5)
    result = db.query("SELECT PName, PFunction FROM Protein")
    flagged = [i for i in range(len(result)) if result.annotations_of(i)]
    assert len(flagged) == 5
    assert all("OUTDATED" in result.annotation_bodies(i)[0] for i in flagged)


def test_blast_rule_is_recomputed_not_marked():
    db = build()
    summary = db.execute("UPDATE GeneMatching SET Gene1 = 'AAAAAAAA'")
    assert summary.details["marked_outdated"] == []
    assert len(summary.details["recomputed"]) == summary.rows_affected


def test_bench_update_with_dependency_tracking(benchmark):
    db = build()
    rng = random.Random(3)

    counter = {"i": 0}

    def run():
        counter["i"] += 1
        gid = f"JW{counter['i'] % NUM_GENES:04d}"
        db.execute(
            f"UPDATE Gene SET GSequence = '{dna_sequence(60, rng)}' WHERE GID = '{gid}'"
        )

    benchmark(run)


def test_bench_update_without_rules(benchmark):
    """Baseline: the same update stream on a database without dependency rules."""
    db = make_db()
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    rng = random.Random(3)
    for index in range(NUM_GENES):
        db.execute(f"INSERT INTO Gene VALUES ('JW{index:04d}', 'g', "
                   f"'{dna_sequence(60, rng)}')")
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        gid = f"JW{counter['i'] % NUM_GENES:04d}"
        db.execute(
            f"UPDATE Gene SET GSequence = '{dna_sequence(60, rng)}' WHERE GID = '{gid}'"
        )

    benchmark(run)
