"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or quantitative claims
(see DESIGN.md, "Experiments to reproduce").  Benchmarks print the series they
measure so that EXPERIMENTS.md can be checked against `pytest benchmarks/
--benchmark-only -s` output, and they assert the *shape* the paper reports
(who wins, roughly by how much) rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro import Database, EngineConfig


@pytest.fixture
def fresh_db() -> Database:
    return Database()


def make_db(scheme: str = "compact", propagate_outdated: bool = True) -> Database:
    return Database(config=EngineConfig(default_annotation_scheme=scheme,
                                        propagate_outdated=propagate_outdated))


def print_table(title: str, headers, rows) -> None:
    """Print a small aligned table under a title (shown with pytest -s)."""
    print(f"\n== {title} ==")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
