"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures or quantitative claims
(see DESIGN.md, "Experiments to reproduce").  Benchmarks print the series they
measure so that EXPERIMENTS.md can be checked against `pytest benchmarks/
--benchmark-only -s` output, and they assert the *shape* the paper reports
(who wins, roughly by how much) rather than absolute numbers.

``write_bench_results`` additionally persists machine-readable results to
``BENCH_<name>.json`` at the repo root so the performance trajectory can be
tracked across PRs (and diffed in CI).
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from repro import Database, EngineConfig

#: Repo root (bench_utils lives in <root>/benchmarks/).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture
def fresh_db() -> Database:
    return Database()


def make_db(scheme: str = "compact", propagate_outdated: bool = True) -> Database:
    return Database(config=EngineConfig(default_annotation_scheme=scheme,
                                        propagate_outdated=propagate_outdated))


def print_table(title: str, headers, rows) -> None:
    """Print a small aligned table under a title (shown with pytest -s)."""
    print(f"\n== {title} ==")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def write_bench_results(name: str, results: dict, meta: dict = None) -> str:
    """Merge benchmark results into ``BENCH_<name>.json`` at the repo root.

    ``results`` maps series names to arbitrary JSON-serialisable payloads;
    existing series with other names are preserved, so several tests (and
    several runs) can contribute to one file.  Returns the file path.
    """
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    payload = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload.setdefault("meta", {})
    payload["meta"].update({
        "python": platform.python_version(),
        "platform": platform.platform(),
        "updated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    if meta:
        payload["meta"].update(meta)
    payload.setdefault("results", {})
    payload["results"].update(results)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
