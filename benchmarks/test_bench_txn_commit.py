"""Transaction commit throughput: group commit vs an fsync per commit.

``N`` writer threads each run a loop of one-row transactions
(``BEGIN; INSERT; COMMIT``) against a file-backed database.  Under
``group_commit=True`` concurrent committers share one WAL fsync (the first
waiter fsyncs on behalf of everyone appended so far); under
``group_commit=False`` every commit pays its own fsync inside the WAL mutex.

The writers use the direct Python API (``db.begin()`` / ``insert_row`` /
``db.commit()``) rather than the SQL cursor path so the number measured is
the commit protocol, not statement parsing overhead: an fsync here costs a
few hundred microseconds while the engine's insert path costs tens, and the
ratio between the two strategies is exactly what the benchmark isolates.

The quick smoke variant runs in tier-1 and asserts only the shape (group
commit batches fsyncs, everything stays durable); the full variant
(``--runslow``) sweeps writer counts and asserts the headline claim: with
enough concurrent writers, group commit sustains >= 3x the inserts/sec of
fsync-per-commit.  Results are persisted to ``BENCH_streaming.json``.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time

import pytest

from repro import Database, EngineConfig

from bench_utils import print_table, write_bench_results


def run_commit_loop(writers: int, commits_per_writer: int,
                    group_commit: bool) -> dict:
    """Inserts/sec of ``writers`` threads committing one-row transactions."""
    directory = tempfile.mkdtemp(prefix="bench_txn_")
    try:
        db = Database(directory + "/bench.db",
                      config=EngineConfig(group_commit=group_commit))
        db.connect().execute(
            "CREATE TABLE bench (id INTEGER PRIMARY KEY, v INTEGER)")
        table = db.table("bench")
        fsyncs_before = db.wal.fsync_count
        errors = []

        def writer(base: int) -> None:
            try:
                for i in range(commits_per_writer):
                    db.begin()
                    table.insert_row({"id": base + i, "v": i})
                    db.commit()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k * 10_000_000,))
                   for k in range(writers)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert errors == []
        commits = writers * commits_per_writer
        assert len(table) == commits
        fsyncs = db.wal.fsync_count - fsyncs_before
        db.close()
        # Reopen-and-verify: every acknowledged commit must survive.
        reopened = Database(directory + "/bench.db")
        assert len(reopened.table("bench")) == commits
        reopened.close()
        return {
            "writers": writers,
            "commits": commits,
            "seconds": round(elapsed, 6),
            "inserts_per_sec": round(commits / elapsed, 1),
            "fsyncs": fsyncs,
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def compare(writers: int, commits_per_writer: int) -> dict:
    group = run_commit_loop(writers, commits_per_writer, group_commit=True)
    naive = run_commit_loop(writers, commits_per_writer, group_commit=False)
    return {
        "group_commit": group,
        "fsync_per_commit": naive,
        "ratio": round(group["inserts_per_sec"] / naive["inserts_per_sec"], 2),
    }


def print_series(title: str, series: dict) -> None:
    print_table(
        title,
        ["writers", "strategy", "inserts/s", "fsyncs", "commits"],
        [[s["group_commit"]["writers"], strategy,
          s[key]["inserts_per_sec"], s[key]["fsyncs"], s[key]["commits"]]
         for s in series.values()
         for strategy, key in (("group", "group_commit"),
                               ("per-commit", "fsync_per_commit"))],
    )


def test_txn_commit_smoke():
    """Tier-1 shape check: group commit batches fsyncs, durability holds."""
    result = compare(writers=4, commits_per_writer=25)
    print_series("txn commit throughput (smoke, 4 writers)",
                 {"w4": result})
    group, naive = result["group_commit"], result["fsync_per_commit"]
    # fsync-per-commit pays at least one fsync per commit; group commit
    # never pays more than that (and batches whenever commits overlap).
    assert naive["fsyncs"] >= naive["commits"]
    assert group["fsyncs"] <= naive["fsyncs"]
    write_bench_results("streaming", {"txn_commit_smoke": result})


@pytest.mark.slow
def test_txn_commit_group_vs_fsync_per_commit():
    """Full sweep: group commit >= 3x fsync-per-commit at high concurrency."""
    series = {}
    for writers in (1, 8, 32, 64):
        commits_per_writer = max(1, 3200 // writers)
        best = None
        for _ in range(2):  # best of two: fsync timings jitter
            result = compare(writers, commits_per_writer)
            if best is None or result["ratio"] > best["ratio"]:
                best = result
        series[f"writers_{writers}"] = best
    print_series("txn commit throughput (group vs fsync-per-commit)", series)
    ratios = {w: s["ratio"] for w, s in series.items()}
    print(f"  speedup ratios: {ratios}")
    best_ratio = max(ratios.values())
    assert best_ratio >= 3.0, (
        f"group commit should reach >=3x fsync-per-commit at some "
        f"concurrency; got {ratios}")
    # With one writer there is nobody to share an fsync with: the two
    # strategies must be within noise of each other.
    assert series["writers_1"]["ratio"] < 2.0
    write_bench_results("streaming", {"txn_commit": series})
