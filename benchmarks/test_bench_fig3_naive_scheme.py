"""E1 — Figure 3 and Section 3's query steps (a)-(c).

The paper motivates A-SQL by showing that, with annotations stored as plain
data columns, retrieving the genes common to DB1_Gene and DB2_Gene *with*
their annotations takes three SQL statements, whereas A-SQL needs one.  This
benchmark loads the Figure 2/3 workload, runs both formulations, checks they
agree, and times them.
"""

from __future__ import annotations

import pytest

from bench_utils import make_db, print_table
from repro.workloads import build_gene_tables

NUM_GENES = 60
OVERLAP = 0.5


@pytest.fixture(scope="module")
def loaded():
    db = make_db(scheme="naive")
    info = build_gene_tables(db, num_genes=NUM_GENES, overlap=OVERLAP, seed=3)
    return db, info


ASQL_QUERY = (
    "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) "
    "INTERSECT "
    "SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)"
)

MANUAL_STEP_A = (
    "SELECT GID, GName, GSequence FROM DB1_Gene "
    "INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene"
)


def run_asql(db):
    return db.query(ASQL_QUERY)


def run_manual(db):
    """The paper's steps (a)-(c): intersect, then join back to each table's
    annotations through the annotation manager (standing in for the manual
    annotation-column joins of Figure 3)."""
    step_a = db.query(MANUAL_STEP_A)
    # Steps (b) and (c): re-attach annotations of both source tables by
    # probing each table's annotation linkage for the matching tuples.
    results = []
    for row in step_a.values():
        gid = row[0]
        annotations = set()
        for table_name in ("DB1_Gene", "DB2_Gene"):
            table = db.table(table_name)
            index = db.annotations.propagation_index(table_name, ["GAnnotation"])
            for tuple_id in table.find_tuples("GID", gid):
                for position in range(len(table.schema)):
                    annotations |= index.lookup(tuple_id, position)
        results.append((row, annotations))
    return results


def test_asql_and_manual_plans_agree(loaded):
    db, info = loaded
    asql = run_asql(db)
    manual = run_manual(db)
    assert len(asql) == len(manual) == len(info["common"])
    asql_by_gid = {row.values[0]: row.all_annotations() for row in asql.rows}
    for (values, annotations) in manual:
        assert asql_by_gid[values[0]] == annotations


def test_bench_asql_single_statement(benchmark, loaded):
    db, info = loaded
    result = benchmark(run_asql, db)
    print_table(
        "E1/Figure 3 — annotated INTERSECT (A-SQL, 1 statement)",
        ["genes in answer", "statements", "annotations on first row"],
        [[len(result), 1, len(result.rows[0].all_annotations())]],
    )


def test_bench_manual_three_statements(benchmark, loaded):
    db, info = loaded
    result = benchmark(run_manual, db)
    print_table(
        "E1/Figure 3 — annotated INTERSECT (manual plan, 3 statements)",
        ["genes in answer", "statements", "annotations on first row"],
        [[len(result), 3, len(result[0][1])]],
    )
