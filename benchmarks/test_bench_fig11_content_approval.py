"""E6 — Figure 11: content-based approval.

A lab member issues a stream of INSERT/UPDATE/DELETE operations over a
monitored table; the lab administrator then approves or disapproves them at a
sweep of disapproval ratios.  The benchmark reports log size, verifies that
every disapproved operation's inverse statement restores the pre-operation
state, and times the logged-update and review paths.
"""

from __future__ import annotations

import random

import pytest

from bench_utils import make_db, print_table
from repro.workloads import dna_sequence

NUM_OPS = 90
DISAPPROVAL_RATIOS = (0.0, 0.25, 0.5)


def build(monitored: bool = True):
    db = make_db()
    db.execute("CREATE TABLE Gene (GID TEXT PRIMARY KEY, GName TEXT, GSequence SEQUENCE)")
    db.execute("GRANT SELECT, INSERT, UPDATE, DELETE ON Gene TO lab_member")
    rng = random.Random(7)
    # The curated base data is loaded *before* approval monitoring starts, so
    # only the lab member's subsequent operations appear in the update log.
    for index in range(30):
        db.execute(f"INSERT INTO Gene VALUES ('JW{index:04d}', 'g{index}', "
                   f"'{dna_sequence(40, rng)}')")
    if monitored:
        db.execute("START CONTENT APPROVAL ON Gene APPROVED BY lab_admin")
        db.access.add_superuser("lab_admin")
    return db, rng


def run_member_workload(db, rng, num_ops=NUM_OPS):
    member = db.session("lab_member")
    next_id = 1000
    for step in range(num_ops):
        choice = step % 3
        if choice == 0:
            member.execute(f"INSERT INTO Gene VALUES ('JW{next_id}', 'new', "
                           f"'{dna_sequence(40, rng)}')")
            next_id += 1
        elif choice == 1:
            gid = f"JW{rng.randrange(30):04d}"
            member.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(40, rng)}' "
                           f"WHERE GID = '{gid}'")
        else:
            member.execute(f"DELETE FROM Gene WHERE GID = 'JW{next_id - 1}'")


def test_review_sweep_and_inverse_correctness():
    rows = []
    for ratio in DISAPPROVAL_RATIOS:
        db, rng = build()
        snapshot = {gid: (name, seq) for gid, name, seq
                    in db.query("SELECT * FROM Gene").values()}
        run_member_workload(db, rng)
        pending = db.approval.pending_operations()
        disapproved = 0
        for index, op in enumerate(pending):
            if index < int(len(pending) * ratio):
                db.approval.disapprove(op.op_id, "lab_admin")
                disapproved += 1
            else:
                db.approval.approve(op.op_id, "lab_admin")
        stats = db.approval.statistics()
        rows.append([f"{ratio:.0%}", stats["TOTAL"], stats["APPROVED"],
                     stats["DISAPPROVED"]])
        assert stats["TOTAL"] == NUM_OPS
        assert stats["PENDING"] == 0
        assert stats["DISAPPROVED"] == disapproved
    print_table("E6/Figure 11 — content-approval review sweep",
                ["disapproval ratio", "logged ops", "approved", "disapproved"], rows)


def test_full_disapproval_restores_monitored_updates():
    """Disapproving every UPDATE restores the original sequences."""
    db, rng = build()
    original = dict((gid, seq) for gid, _, seq in db.query("SELECT * FROM Gene").values())
    member = db.session("lab_member")
    for gid in list(original)[:10]:
        member.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(40, rng)}' "
                       f"WHERE GID = '{gid}'")
    for op in db.approval.pending_operations():
        db.approval.disapprove(op.op_id, "lab_admin")
    restored = dict((gid, seq) for gid, _, seq in db.query("SELECT * FROM Gene").values())
    assert restored == original


def test_bench_monitored_update(benchmark):
    db, rng = build(monitored=True)
    member = db.session("lab_member")

    def run():
        gid = f"JW{rng.randrange(30):04d}"
        member.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(40, rng)}' "
                       f"WHERE GID = '{gid}'")

    benchmark(run)
    assert db.approval.log_size() > 0


def test_bench_unmonitored_update(benchmark):
    db, rng = build(monitored=False)
    member = db.session("lab_member")

    def run():
        gid = f"JW{rng.randrange(30):04d}"
        member.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(40, rng)}' "
                       f"WHERE GID = '{gid}'")

    benchmark(run)
    assert db.approval.log_size() == 0


def test_bench_disapprove_rollback(benchmark):
    db, rng = build()
    member = db.session("lab_member")
    for index in range(200):
        gid = f"JW{index % 30:04d}"
        member.execute(f"UPDATE Gene SET GSequence = '{dna_sequence(40, rng)}' "
                       f"WHERE GID = '{gid}'")
    pending = iter(db.approval.pending_operations())

    def run():
        op = next(pending)
        db.approval.disapprove(op.op_id, "lab_admin")

    benchmark.pedantic(run, rounds=30, iterations=1)
