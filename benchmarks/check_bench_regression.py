"""Benchmark-regression smoke: fresh smoke results vs. the committed baseline.

Usage (CI): ``python benchmarks/check_bench_regression.py``

Snapshots the committed ``BENCH_streaming.json``, runs the smoke benchmarks
of ``test_bench_streaming_executor.py``, ``test_bench_txn_commit.py``,
``test_bench_qps_concurrent.py`` and ``test_bench_foreign_scan.py`` (which
merge fresh numbers into the same file), and compares every ``seconds``
leaf present in both versions.

Because the committed baseline comes from a different machine, raw ratios
are first normalized by the *median* fresh/baseline ratio across all shared
series — a uniform machine-speed factor cancels out, so a slow CI runner
does not fail every series.  What trips the check is a series that got more
than ``THRESHOLD``x slower than its peers moved: an accidentally
de-vectorized pipeline, a lost short-circuit — not single-digit-percent
drift or a slower host.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_streaming.json")
BENCH_NAME = "BENCH_streaming.json"
THRESHOLD = 2.0


def load_baseline():
    """The *committed* baseline, straight from git.

    The working-tree copy is not trustworthy here: any earlier tier-1 run in
    the same job (plain ``pytest`` collects the smoke benchmarks, which call
    ``write_bench_results``) will already have overwritten the file with
    this machine's fresh numbers, and comparing those to themselves can
    never detect a regression.
    """
    try:
        shown = subprocess.run(
            ["git", "show", f"HEAD:{BENCH_NAME}"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(shown)
    except (subprocess.CalledProcessError, FileNotFoundError, ValueError):
        if not os.path.exists(BENCH_PATH):
            return None
        with open(BENCH_PATH) as handle:
            return json.load(handle)


def seconds_leaves(node, prefix=""):
    """Flatten nested benchmark dicts into {series path: seconds}."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == "seconds" and isinstance(value, (int, float)):
                out[prefix] = float(value)
            else:
                out.update(seconds_leaves(value, path))
    return out


def main() -> int:
    baseline = load_baseline()
    if baseline is None:
        print(f"no baseline for {BENCH_NAME}; nothing to compare")
        return 0

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, "-m", "pytest",
         "benchmarks/test_bench_streaming_executor.py",
         "benchmarks/test_bench_txn_commit.py",
         "benchmarks/test_bench_qps_concurrent.py",
         "benchmarks/test_bench_foreign_scan.py",
         "-q", "-k", "smoke"],
        cwd=REPO_ROOT, env=env,
    )
    if result.returncode != 0:
        print("smoke benchmarks failed")
        return result.returncode

    with open(BENCH_PATH) as handle:
        fresh = json.load(handle)

    old = seconds_leaves(baseline.get("results", {}))
    new = seconds_leaves(fresh.get("results", {}))
    # Only series the smoke run actually re-measured: leaves it did not
    # rewrite read back byte-identical and would pin the median at 1.0,
    # skewing the machine-speed factor.
    shared = sorted(series for series in set(old) & set(new)
                    if new[series] != old[series])
    if not shared:
        print("no re-measured series between baseline and fresh results")
        return 0
    ratios = {series: (new[series] / old[series] if old[series] > 0
                       else float("inf"))
              for series in shared}
    ordered = sorted(ratios.values())
    machine_factor = ordered[len(ordered) // 2]  # median = host speed delta
    print(f"machine-speed normalization factor (median ratio): "
          f"{machine_factor:.2f}x\n")
    failures = []
    for series in shared:
        before, after = old[series], new[series]
        normalized = ratios[series] / machine_factor if machine_factor > 0 \
            else float("inf")
        marker = "FAIL" if normalized > THRESHOLD else "ok"
        print(f"{marker:4s} {series}: {before:.4f}s -> {after:.4f}s "
              f"({normalized:.2f}x normalized)")
        if normalized > THRESHOLD:
            failures.append(series)
    if failures:
        print(f"\n{len(failures)} series regressed by more than "
              f"{THRESHOLD}x: {', '.join(failures)}")
        return 1
    print("\nno benchmark regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
