"""E8 — Figure 12 and Section 7.2: the SBC-tree over RLE-compressed sequences.

The paper reports, for RLE-compressed protein secondary-structure sequences:
roughly an order of magnitude reduction in storage, up to 30% fewer I/Os on
insertion, and search performance matching the String B-tree built over the
uncompressed sequences.  This benchmark indexes a synthetic secondary-
structure corpus with both indexes and reports storage, insertion I/O, and
substring-search agreement and I/O.
"""

from __future__ import annotations

import random

import pytest

from bench_utils import print_table
from repro.index.sbc import SbcTree, UncompressedSuffixIndex
from repro.workloads import secondary_structure_corpus

NUM_SEQUENCES = 60
SEQUENCE_LENGTH = 400
MEAN_RUN_LENGTH = 10.0


@pytest.fixture(scope="module")
def corpus():
    return secondary_structure_corpus(NUM_SEQUENCES, SEQUENCE_LENGTH, seed=23,
                                      mean_run_length=MEAN_RUN_LENGTH)


@pytest.fixture(scope="module")
def built(corpus):
    sbc, baseline = SbcTree(), UncompressedSuffixIndex()
    for seq_id, sequence in enumerate(corpus):
        sbc.insert(seq_id, sequence)
        baseline.insert(seq_id, sequence)
    return sbc, baseline


def test_storage_and_insertion_io_shape(corpus):
    sbc, baseline = SbcTree(), UncompressedSuffixIndex()
    for seq_id, sequence in enumerate(corpus):
        sbc.insert(seq_id, sequence)
        baseline.insert(seq_id, sequence)
    storage_ratio = baseline.storage_bytes() / sbc.storage_bytes()
    entry_ratio = baseline.index_entries() / sbc.index_entries()
    insertion_io_reduction = 1 - sbc.stats.total_io / baseline.stats.total_io
    print_table(
        "E8/Figure 12 — SBC-tree vs String B-tree over uncompressed sequences "
        f"({NUM_SEQUENCES} sequences x {SEQUENCE_LENGTH} residues)",
        ["metric", "uncompressed String B-tree", "SBC-tree (RLE)", "ratio"],
        [
            ["sequence storage (bytes)", baseline.storage_bytes(),
             sbc.storage_bytes(), f"{storage_ratio:.1f}x smaller"],
            ["index entries (suffixes)", baseline.index_entries(),
             sbc.index_entries(), f"{entry_ratio:.1f}x fewer"],
            ["insertion node I/O", baseline.stats.total_io, sbc.stats.total_io,
             f"{insertion_io_reduction:.0%} fewer"],
        ],
    )
    # Paper shape: ~order-of-magnitude storage reduction on run-heavy data and
    # at least 30% fewer insertion I/Os.
    assert storage_ratio > 4
    assert entry_ratio > 4
    assert insertion_io_reduction > 0.3


def test_search_results_agree_and_io_is_no_worse(corpus, built):
    sbc, baseline = built
    rng = random.Random(5)
    sbc_io = baseline_io = 0
    for _ in range(25):
        source = rng.randrange(NUM_SEQUENCES)
        start = rng.randrange(SEQUENCE_LENGTH - 30)
        pattern = corpus[source][start:start + rng.randint(4, 30)]
        before = sbc.stats.total_io
        sbc_result = sbc.search_substring(pattern)
        sbc_io += sbc.stats.total_io - before
        before = baseline.stats.total_io
        baseline_result = baseline.search_substring(pattern)
        baseline_io += baseline.stats.total_io - before
        assert sbc_result == baseline_result
    print_table(
        "E8/Section 7.2 — substring search I/O (25 random patterns)",
        ["index", "total node reads"],
        [["uncompressed String B-tree", baseline_io], ["SBC-tree", sbc_io]],
    )
    # Search over the compressed form must not be worse than the baseline.
    assert sbc_io <= baseline_io * 1.2


def test_bench_sbc_insert(benchmark, corpus):
    counter = {"i": 0}

    def run():
        sbc = SbcTree()
        for seq_id, sequence in enumerate(corpus[:15]):
            sbc.insert(seq_id, sequence)
        counter["i"] += 1
        return sbc

    benchmark(run)


def test_bench_baseline_insert(benchmark, corpus):
    def run():
        baseline = UncompressedSuffixIndex()
        for seq_id, sequence in enumerate(corpus[:15]):
            baseline.insert(seq_id, sequence)
        return baseline

    benchmark(run)


def test_bench_sbc_substring_search(benchmark, corpus, built):
    sbc, _ = built
    pattern = corpus[11][100:120]
    result = benchmark(sbc.search_substring, pattern)
    assert 11 in result


def test_bench_baseline_substring_search(benchmark, corpus, built):
    _, baseline = built
    pattern = corpus[11][100:120]
    result = benchmark(baseline.search_substring, pattern)
    assert 11 in result


def test_bench_sbc_prefix_search(benchmark, corpus, built):
    sbc, _ = built
    pattern = corpus[4][:12]
    result = benchmark(sbc.search_prefix, pattern)
    assert 4 in result
