"""Benchmarks for the streaming (Volcano-style) and vectorized executors.

Query shapes covered:

* scan+filter+LIMIT and a three-way equi-join under the streaming pipeline
  vs. the materialized baseline (latency + tracemalloc peak);
* the full-scan filter pipeline (no LIMIT) under the **batched** pipeline
  vs. row-at-a-time streaming — the vectorization headline number (plain
  wall clock: tracemalloc would distort the allocation-bound row path);
* B-tree ``IndexRangeScan`` vs. sequential scan on a selective window, and
  an ORDER BY satisfied by index order (sort elided) vs. an explicit sort.

Results are persisted to ``BENCH_streaming.json`` at the repo root via
:func:`bench_utils.write_bench_results` so the perf trajectory is tracked.
The quick smoke variants run in tier-1; the full-size variants are marked
``slow`` (``pytest --runslow``).
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro import Database

from bench_utils import print_table, write_bench_results


# ---------------------------------------------------------------------------
# Measurement helpers
# ---------------------------------------------------------------------------
def measure(db: Database, query: str, mode: str, *, strategy: str = "auto",
            budget: int = None) -> dict:
    """Latency + tracemalloc peak of one query under a pipeline mode."""
    db.config.execution_mode = mode
    db.config.join_strategy = strategy
    db.config.memory_budget_rows = budget
    try:
        tracemalloc.start()
        started = time.perf_counter()
        result = db.query(query)
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        db.config.execution_mode = "streaming"
        db.config.join_strategy = "auto"
        db.config.memory_budget_rows = None
    return {"seconds": round(elapsed, 6), "peak_bytes": peak, "rows": len(result)}


def scan_db(rows: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE events (eid INTEGER PRIMARY KEY, kind TEXT, v FLOAT)")
    table = db.table("events")
    for i in range(rows):
        table.insert_row({"eid": i, "kind": f"k{i % 5}", "v": i * 0.5})
    db.analyze("events")
    return db


def join_db(genes: int, proteins_per_gene: int, samples_per_protein: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE gene (gid INTEGER PRIMARY KEY, score FLOAT)")
    db.execute("CREATE TABLE protein (pid INTEGER PRIMARY KEY, gid INTEGER, kind TEXT)")
    db.execute("CREATE TABLE sample (sid INTEGER PRIMARY KEY, pid INTEGER, w FLOAT)")
    gene, protein, sample = db.table("gene"), db.table("protein"), db.table("sample")
    pid = sid = 0
    for g in range(genes):
        gene.insert_row({"gid": g, "score": g * 0.5})
        for _ in range(proteins_per_gene):
            protein.insert_row({"pid": pid, "gid": g, "kind": f"k{pid % 3}"})
            for _ in range(samples_per_protein):
                sample.insert_row({"sid": sid, "pid": pid, "w": sid * 0.25})
                sid += 1
            pid += 1
    db.execute("CREATE INDEX ix_protein_gid ON protein (gid) USING btree")
    db.execute("CREATE INDEX ix_sample_pid ON sample (pid) USING btree")
    db.analyze()
    return db


def run_scan_filter_limit(rows: int, label: str) -> dict:
    db = scan_db(rows)
    query = f"SELECT eid FROM events WHERE v >= 0 AND kind <> 'k4' LIMIT 10"
    series = {mode: measure(db, query, mode)
              for mode in ("materialized", "streaming")}
    print_table(
        f"scan+filter+LIMIT 10 over {rows} rows ({label})",
        ["mode", "seconds", "peak MB", "rows"],
        [[mode, f"{m['seconds']:.4f}", f"{m['peak_bytes'] / 1e6:.2f}", m["rows"]]
         for mode, m in series.items()],
    )
    assert series["streaming"]["rows"] == series["materialized"]["rows"] == 10
    return series


def run_three_way_join(genes: int, label: str) -> dict:
    db = join_db(genes, proteins_per_gene=4, samples_per_protein=2)
    query = ("SELECT g.gid, p.pid, s.sid FROM gene g, protein p, sample s "
             "WHERE g.gid = p.gid AND p.pid = s.pid AND g.score >= 1")
    series = {
        "materialized_hash": measure(db, query, "materialized", strategy="hash"),
        "streaming_hash": measure(db, query, "streaming", strategy="hash"),
        "streaming_index_nl": measure(db, query, "streaming",
                                      strategy="index_nested_loop"),
    }
    limited = query + " LIMIT 20"
    series["streaming_index_nl_limit20"] = measure(db, limited, "streaming",
                                                   strategy="index_nested_loop")
    series["materialized_hash_limit20"] = measure(db, limited, "materialized",
                                                  strategy="hash")
    print_table(
        f"3-way join, {genes} genes ({label})",
        ["series", "seconds", "peak MB", "rows"],
        [[name, f"{m['seconds']:.4f}", f"{m['peak_bytes'] / 1e6:.2f}", m["rows"]]
         for name, m in series.items()],
    )
    # Same answers regardless of path.
    assert series["streaming_hash"]["rows"] == series["materialized_hash"]["rows"] \
        == series["streaming_index_nl"]["rows"]
    return series


def measure_latency(db: Database, query: str, mode: str, *, repeats: int = 7,
                    use_indexes: bool = True) -> dict:
    """Best-of-N wall-clock latency (no tracemalloc: it would dominate the
    allocation-heavy paths and distort the batched-vs-row comparison)."""
    db.config.execution_mode = mode
    db.config.use_indexes = use_indexes
    best = None
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = db.query(query)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
    finally:
        db.config.execution_mode = "streaming"
        db.config.use_indexes = True
    return {"seconds": round(best, 6), "rows": len(result)}


def run_batched_vs_row(rows: int, label: str) -> dict:
    """The vectorization headline: full-scan filter pipeline, no LIMIT."""
    db = scan_db(rows)
    query = "SELECT eid FROM events WHERE v >= 0 AND kind <> 'k4'"
    series = {mode: measure_latency(db, query, mode)
              for mode in ("streaming", "row", "materialized")}
    series["speedup_vs_row"] = round(
        series["row"]["seconds"] / series["streaming"]["seconds"], 2)
    print_table(
        f"full-scan filter pipeline over {rows} rows ({label})",
        ["mode", "seconds", "rows/s", "rows out"],
        [[mode, f"{m['seconds']:.4f}", f"{m['rows'] / m['seconds']:,.0f}",
          m["rows"]]
         for mode, m in series.items() if isinstance(m, dict)],
    )
    counts = {m["rows"] for m in series.values() if isinstance(m, dict)}
    assert counts == {rows * 4 // 5}
    return series


def range_scan_db(rows: int) -> Database:
    db = scan_db(rows)
    db.execute("CREATE INDEX ix_events_v ON events (v) USING btree")
    db.analyze("events")
    return db


def run_range_scan(rows: int, label: str) -> dict:
    """IndexRangeScan vs. sequential scan, and sort elision vs. explicit sort."""
    db = range_scan_db(rows)
    low, high = rows * 0.5 * 0.45, rows * 0.5 * 0.46   # ~1% window
    window = f"SELECT eid FROM events WHERE v BETWEEN {low} AND {high}"
    ordered = window + " ORDER BY v"
    series = {
        "range_scan": measure_latency(db, window, "streaming"),
        "seq_scan": measure_latency(db, window, "streaming", use_indexes=False),
        "order_elided": measure_latency(db, ordered, "streaming"),
        "order_sorted": measure_latency(db, ordered, "streaming",
                                        use_indexes=False),
    }
    db.query(window)
    from repro.planner.plan import plan_access_paths
    assert plan_access_paths(db.engine.last_plan) == ["index_range"]
    db.query(ordered)
    assert db.engine.last_sort_elided
    explained = db.explain(ordered)
    assert "IndexRangeScan" in explained.message
    assert "[sort: elided]" in explained.message
    print_table(
        f"range scan + sort elision, {rows} rows, ~1% window ({label})",
        ["series", "seconds", "rows"],
        [[name, f"{m['seconds']:.4f}", m["rows"]] for name, m in series.items()],
    )
    assert series["range_scan"]["rows"] == series["seq_scan"]["rows"] > 0
    assert series["order_elided"]["rows"] == series["order_sorted"]["rows"]
    return series


def spill_db(rows: int) -> Database:
    db = Database()
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, k INTEGER, v FLOAT)")
    db.execute("CREATE TABLE dim (id INTEGER PRIMARY KEY, fk INTEGER)")
    fact, dim = db.table("fact"), db.table("dim")
    for i in range(rows):
        fact.insert_row({"id": i, "k": i % 64, "v": i * 0.5})
        dim.insert_row({"id": i, "fk": i})
    db.analyze()
    return db


def run_spill_breakers(rows: int, label: str) -> dict:
    """Larger-than-budget join + aggregation: Grace hash join and partitioned
    GROUP BY vs. their unbounded in-memory forms (latency + peak memory)."""
    db = spill_db(rows)
    budget = max(256, rows // 10)
    join_query = "SELECT fact.id, dim.id FROM fact, dim WHERE fact.id = dim.fk"
    group_query = "SELECT k, COUNT(*), SUM(v) FROM fact GROUP BY k"
    series = {
        "join_in_memory": measure(db, join_query, "streaming", strategy="hash"),
        "join_spilled": measure(db, join_query, "streaming", strategy="hash",
                                budget=budget),
    }
    join_events = db.engine.last_spill.events("hash_join")
    series["groupby_in_memory"] = measure(db, group_query, "streaming")
    series["groupby_spilled"] = measure(db, group_query, "streaming",
                                        budget=budget)
    group_events = db.engine.last_spill.events("group_by")
    series["budget_rows"] = budget
    series["join_partitions"] = join_events[0]["partitions"] if join_events else 0
    print_table(
        f"spilling breakers, {rows} rows, budget {budget} ({label})",
        ["series", "seconds", "peak MB", "rows"],
        [[name, f"{m['seconds']:.4f}", f"{m['peak_bytes'] / 1e6:.2f}", m["rows"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    # The spill really ran, and both paths agree on the answers.
    assert join_events and group_events
    assert series["join_spilled"]["rows"] == series["join_in_memory"]["rows"] == rows
    assert series["groupby_spilled"]["rows"] == series["groupby_in_memory"]["rows"]
    return series


# ---------------------------------------------------------------------------
# Tier-1 smoke (small sizes, always on — also exercised by CI --runslow step)
# ---------------------------------------------------------------------------
def test_streaming_scan_smoke():
    series = run_scan_filter_limit(5_000, "smoke")
    # Streaming must not pay the O(n) materialization for a LIMIT 10.
    assert series["streaming"]["peak_bytes"] < series["materialized"]["peak_bytes"] / 2
    write_bench_results("streaming", {"scan_filter_limit_5k": series})


def test_streaming_join_smoke():
    series = run_three_way_join(200, "smoke")
    # An early-stopping LIMIT over the index path beats full materialization.
    assert series["streaming_index_nl_limit20"]["peak_bytes"] \
        < series["materialized_hash_limit20"]["peak_bytes"]
    write_bench_results("streaming", {"three_way_join_200": series})


def test_batched_vs_row_smoke():
    series = run_batched_vs_row(10_000, "smoke")
    # Loose bound at smoke size (CI noise); the --runslow run asserts >= 3x.
    assert series["speedup_vs_row"] >= 1.5
    write_bench_results("streaming", {"batched_vs_row_10k": series})


def test_range_scan_smoke():
    series = run_range_scan(10_000, "smoke")
    assert series["range_scan"]["seconds"] < series["seq_scan"]["seconds"]
    write_bench_results("streaming", {"range_scan_10k": series})


def test_spill_breakers_smoke():
    series = run_spill_breakers(8_000, "smoke")
    # Bounded beats unbounded on peak memory even at smoke size.
    assert series["join_spilled"]["peak_bytes"] \
        < series["join_in_memory"]["peak_bytes"]
    assert series["groupby_spilled"]["peak_bytes"] \
        < series["groupby_in_memory"]["peak_bytes"]
    write_bench_results("streaming", {"spill_breakers_8k": series})


# ---------------------------------------------------------------------------
# Full-size runs (--runslow)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_streaming_scan_full():
    series = run_scan_filter_limit(100_000, "full")
    assert series["streaming"]["peak_bytes"] < series["materialized"]["peak_bytes"] / 20
    assert series["streaming"]["seconds"] < series["materialized"]["seconds"]
    write_bench_results("streaming", {"scan_filter_limit_100k": series})


@pytest.mark.slow
def test_streaming_join_full():
    series = run_three_way_join(2_000, "full")
    assert series["streaming_index_nl_limit20"]["peak_bytes"] \
        < series["materialized_hash_limit20"]["peak_bytes"] / 5
    write_bench_results("streaming", {"three_way_join_2k": series})


@pytest.mark.slow
def test_batched_vs_row_full():
    """The PR-3 acceptance number: >= 3x throughput on the full-scan filter
    pipeline (100k rows, no LIMIT) for batched vs. row-at-a-time streaming."""
    series = run_batched_vs_row(100_000, "full")
    assert series["speedup_vs_row"] >= 3.0
    write_bench_results("streaming", {"batched_vs_row_100k": series})


@pytest.mark.slow
def test_range_scan_full():
    series = run_range_scan(100_000, "full")
    # A ~1% window through the B-tree must beat decoding all 100k rows, and
    # index order must not cost more than sorting.
    assert series["range_scan"]["seconds"] < series["seq_scan"]["seconds"] / 2
    assert series["order_elided"]["seconds"] < series["order_sorted"]["seconds"]
    write_bench_results("streaming", {"range_scan_100k": series})


@pytest.mark.slow
def test_spill_breakers_full():
    """The PR-4 acceptance numbers: larger-than-budget join and aggregation
    complete with a fraction of the unbounded pipeline's peak memory."""
    series = run_spill_breakers(60_000, "full")
    assert series["join_spilled"]["peak_bytes"] \
        < series["join_in_memory"]["peak_bytes"] / 2
    assert series["groupby_spilled"]["peak_bytes"] \
        < series["groupby_in_memory"]["peak_bytes"] / 2
    write_bench_results("streaming", {"spill_breakers_60k": series})


# ---------------------------------------------------------------------------
# Intra-query parallelism: spilled join, serial vs. worker pool (PR 7)
# ---------------------------------------------------------------------------
def measure_parallel(db: Database, query: str, workers: int, budget: int,
                     *, repeats: int = 3) -> dict:
    """Best-of-N wall clock of a spilled hash join at a worker count.

    Plain wall clock: tracemalloc's per-allocation hook is not worth paying
    inside pool threads, and the subject here is elapsed I/O overlap."""
    db.config.execution_mode = "streaming"
    db.config.join_strategy = "hash"
    db.config.memory_budget_rows = budget
    db.config.parallel_workers = workers
    best = None
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = db.query(query)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
    finally:
        db.config.join_strategy = "auto"
        db.config.memory_budget_rows = None
        db.config.parallel_workers = 0
    events = db.engine.last_spill.events("hash_join")
    timings = events[0].get("partition_timings", []) if events else []
    return {
        "seconds": round(best, 6),
        "rows": len(result),
        "partitions": events[0]["partitions"] if events else 0,
        "workers_seen": sorted({t["worker"] for t in timings}),
    }


def run_parallel_spill(rows: int, workers: int, label: str) -> dict:
    """Grace hash join over budget: serial partition loop vs. the bounded
    worker pool, identical budget, identical answers."""
    import os
    db = spill_db(rows)
    budget = max(256, rows // 10)
    query = "SELECT fact.id, dim.id FROM fact, dim WHERE fact.id = dim.fk"
    series = {
        "serial_spilled": measure_parallel(db, query, 0, budget),
        f"parallel_{workers}w": measure_parallel(db, query, workers, budget),
        "budget_rows": budget,
        "cpu_count": os.cpu_count() or 1,
    }
    parallel = series[f"parallel_{workers}w"]
    series["speedup"] = round(
        series["serial_spilled"]["seconds"] / parallel["seconds"], 2)
    print_table(
        f"parallel spilled join, {rows} rows, budget {budget}, "
        f"{workers} workers ({label})",
        ["series", "seconds", "partitions", "workers", "rows"],
        [[name, f"{m['seconds']:.4f}", m["partitions"],
          ",".join(m["workers_seen"]), m["rows"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    print(f"  speedup (serial / {workers} workers): {series['speedup']}x "
          f"on {series['cpu_count']} CPU(s)")
    # Both arms spilled (partitions recorded), fanned out wide enough to
    # exercise the pool, agree exactly, and the parallel arm really ran on
    # pool threads.
    assert series["serial_spilled"]["partitions"] >= 4
    assert parallel["partitions"] >= 4
    assert parallel["rows"] == series["serial_spilled"]["rows"] == rows
    assert series["serial_spilled"]["workers_seen"] == ["main"]
    assert any(w.startswith("w") for w in parallel["workers_seen"])
    return series


def assert_parallel_speedup(series: dict, workers: int) -> None:
    """>= 2x with real cores to overlap on; bounded overhead without.

    The pool parallelizes spill-file read-back — on a single-core host (CI
    containers included) the GIL serializes the decode work and the honest
    bar is 'threads must not cost much', not a speedup the hardware cannot
    produce.  Actual numbers are recorded either way."""
    if series["cpu_count"] >= 2:
        assert series["speedup"] >= 2.0, \
            f"expected >= 2x on {series['cpu_count']} CPUs, got {series['speedup']}x"
    else:
        parallel = series[f"parallel_{workers}w"]["seconds"]
        serial = series["serial_spilled"]["seconds"]
        assert parallel <= serial * 1.35, \
            f"single-core pool overhead too high: {parallel:.4f}s vs {serial:.4f}s"


def test_parallel_spill_smoke():
    series = run_parallel_spill(8_000, workers=4, label="smoke")
    write_bench_results("streaming", {"parallel_spill_8k": series})


@pytest.mark.slow
def test_parallel_spill_full():
    """The PR-7 acceptance number: 4-worker spilled join >= 2x the serial
    spilled run at the same budget (hardware permitting — see
    assert_parallel_speedup)."""
    series = run_parallel_spill(60_000, workers=4, label="full")
    assert_parallel_speedup(series, workers=4)
    write_bench_results("streaming", {"parallel_spill_60k": series})


# ---------------------------------------------------------------------------
# Decoded-page cache: warm rescan vs. decode-every-scan (PR 7)
# ---------------------------------------------------------------------------
def run_decoded_cache_rescan(rows: int, pool_size: int, label: str) -> dict:
    """Repeated filter scan with the decoded-page cache on vs. off.

    The pool must hold the whole table: the cache drops entries whenever
    their raw page is evicted (it must never outlive the bytes it mirrors),
    so a pool smaller than the table invalidates continuously and the warm
    path degenerates to the cold one."""
    db = Database(pool_size=pool_size)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
    table = db.table("t")
    for i in range(rows):
        table.insert_row({"id": i, "v": i * 0.5})
    db.analyze("t")
    pages = db.catalog.table("t").num_pages()
    assert pages < pool_size, "bench requires the table to fit in the pool"
    query = f"SELECT id, v FROM t WHERE v >= {rows * 0.05}"

    def best_of(repeats: int = 5) -> dict:
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = db.query(query)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return {"seconds": round(best, 6), "rows": len(result)}

    series = {"decode_every_scan": best_of()}
    db.config.decoded_page_cache_pages = pool_size
    db.query(query)                       # cold pass populates the cache
    assert db.engine.last_cache.misses == pages
    series["warm_rescan"] = best_of()
    hit_ratio = db.engine.last_cache.hit_ratio
    db.config.decoded_page_cache_pages = 0
    series["speedup"] = round(series["decode_every_scan"]["seconds"]
                              / series["warm_rescan"]["seconds"], 2)
    series["table_pages"] = pages
    series["hit_ratio"] = hit_ratio
    print_table(
        f"decoded-page cache rescan, {rows} rows / {pages} pages ({label})",
        ["series", "seconds", "rows"],
        [[name, f"{m['seconds']:.4f}", m["rows"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    print(f"  speedup (decode-every-scan / warm rescan): {series['speedup']}x, "
          f"hit ratio {hit_ratio:.2f}")
    assert hit_ratio == 1.0
    assert series["warm_rescan"]["rows"] == series["decode_every_scan"]["rows"]
    return series


def test_decoded_cache_rescan_smoke():
    series = run_decoded_cache_rescan(6_000, pool_size=256, label="smoke")
    assert series["speedup"] >= 1.2
    write_bench_results("streaming", {"decoded_cache_rescan_6k": series})


@pytest.mark.slow
def test_decoded_cache_rescan_full():
    """The PR-7 acceptance number: >= 1.5x for the warm rescan."""
    series = run_decoded_cache_rescan(20_000, pool_size=512, label="full")
    assert series["speedup"] >= 1.5
    write_bench_results("streaming", {"decoded_cache_rescan": series})


# ---------------------------------------------------------------------------
# Prepared statements: cached-plan reuse vs. parse-per-call (PR 5)
# ---------------------------------------------------------------------------
def prepared_db(rows: int) -> Database:
    db = scan_db(rows)
    db.execute("CREATE INDEX ix_events_eid ON events (eid) USING btree")
    db.analyze("events")
    return db


def run_prepared_reuse(rows: int, repeats: int, label: str) -> dict:
    """Repeated parameterized point query through a reused cursor (plan
    cached after the first execution) vs. the same point query as a fresh
    SQL string per call through the legacy ``db.query`` (tokenize + parse +
    plan every time).  Both arms hit the same B-tree index and fetch the
    same rows; the delta is the per-call front-end work the plan cache
    eliminates."""
    import warnings
    db = prepared_db(rows)
    keys = [(i * 37) % rows for i in range(repeats)]
    sql = "SELECT eid, kind, v FROM events WHERE eid = ?"
    cursor = db.connect().cursor()

    def best_of(batches, run):
        """Min-of-N batch times: one GC pause cannot skew either arm."""
        times = []
        for _ in range(batches):
            started = time.perf_counter()
            run()
            times.append(time.perf_counter() - started)
        return min(times)

    cursor.execute(sql, (0,)).fetchall()            # warm the plan cache

    def cached_arm():
        for key in keys:
            cursor.execute(sql, (key,)).fetchall()
    cached_seconds = best_of(5, cached_arm)
    assert db.engine.last_plan_cached
    stats = db.engine.plan_cache.stats

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        db.query(sql.replace("?", "0"))             # warm caches equally

        def parsed_arm():
            for key in keys:
                db.query(f"SELECT eid, kind, v FROM events WHERE eid = {key}")
        parsed_seconds = best_of(5, parsed_arm)

    series = {
        "cached_plan": {"seconds": round(cached_seconds, 6),
                        "per_call_us": round(cached_seconds / repeats * 1e6, 1)},
        "parse_per_call": {"seconds": round(parsed_seconds, 6),
                           "per_call_us": round(parsed_seconds / repeats * 1e6, 1)},
        "speedup": round(parsed_seconds / cached_seconds, 2),
        "repeats": repeats,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
    }
    print_table(
        f"prepared point query x{repeats}, {rows} rows ({label})",
        ["series", "seconds", "us/call"],
        [[name, f"{m['seconds']:.4f}", m["per_call_us"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    print(f"  speedup (parse-per-call / cached): {series['speedup']}x, "
          f"plan cache hits={stats.hits} misses={stats.misses}")
    return series


def test_prepared_reuse_smoke():
    series = run_prepared_reuse(5_000, repeats=300, label="smoke")
    # The ISSUE-5 acceptance bar: >= 2x for cached-plan reuse.
    assert series["speedup"] >= 2.0
    assert series["cache_hits"] >= 5 * 300
    write_bench_results("streaming", {"prepared_reuse_300": series})


@pytest.mark.slow
def test_prepared_reuse_full():
    """The subject is per-call front-end cost, so full scales the repeat
    count (tighter measurement), not the table: more rows only add
    buffer-pool traffic both arms pay identically."""
    series = run_prepared_reuse(20_000, repeats=3_000, label="full")
    assert series["speedup"] >= 2.0
    write_bench_results("streaming", {"prepared_reuse_3k": series})
