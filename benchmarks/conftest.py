"""Pytest configuration for the benchmark suite (helpers live in bench_utils)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    # Skip logic lives in the root conftest.py next to --runslow.
    config.addinivalue_line(
        "markers", "slow: long-running benchmark, skipped unless --runslow is given")
