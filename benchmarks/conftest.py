"""Pytest configuration for the benchmark suite (helpers live in bench_utils)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
