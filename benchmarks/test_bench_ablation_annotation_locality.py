"""E10 — Ablation: where does the compact rectangle scheme stop winning?

Section 3.1 argues for the compact scheme on the grounds that annotations
usually cover contiguous regions (whole columns, whole tuples, blocks of
cells).  This ablation varies annotation *locality* — from one contiguous
block per annotation to fully scattered cells — and reports the linkage
record count of both schemes, locating the crossover the design choice
depends on.
"""

from __future__ import annotations

import random

import pytest

from bench_utils import make_db, print_table
from repro.annotations.storage import create_linkage_store

NUM_TUPLES = 300
NUM_COLUMNS = 4
CELLS_PER_ANNOTATION = 60
NUM_ANNOTATIONS = 20
#: Fraction of each annotation's cells that are scattered at random instead of
#: forming one contiguous block.
SCATTER_LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)


def cells_with_scatter(rng: random.Random, scatter: float):
    scattered_count = int(CELLS_PER_ANNOTATION * scatter)
    block_count = CELLS_PER_ANNOTATION - scattered_count
    column = rng.randrange(NUM_COLUMNS)
    start = rng.randrange(NUM_TUPLES - block_count) if block_count else 0
    cells = {(start + offset, column) for offset in range(block_count)}
    while len(cells) < CELLS_PER_ANNOTATION:
        cells.add((rng.randrange(NUM_TUPLES), rng.randrange(NUM_COLUMNS)))
    return cells


@pytest.fixture(scope="module")
def sweep_results():
    results = []
    for scatter in SCATTER_LEVELS:
        rng = random.Random(int(scatter * 100) + 1)
        db = make_db()
        naive = create_linkage_store("naive", db.catalog, f"__abl_naive_{int(scatter*100)}")
        compact = create_linkage_store("compact", db.catalog, f"__abl_compact_{int(scatter*100)}")
        for ann_id in range(NUM_ANNOTATIONS):
            cells = cells_with_scatter(rng, scatter)
            naive.attach(ann_id, cells)
            compact.attach(ann_id, cells)
        results.append({
            "scatter": scatter,
            "naive_records": naive.record_count(),
            "compact_records": compact.record_count(),
            "naive_pages": naive.num_pages(),
            "compact_pages": compact.num_pages(),
        })
    return results


def test_locality_sweep_shape(sweep_results):
    rows = [[f"{r['scatter']:.0%}", r["naive_records"], r["compact_records"],
             r["naive_pages"], r["compact_pages"],
             f"{r['naive_records'] / r['compact_records']:.1f}x"]
            for r in sweep_results]
    print_table(
        "E10 — annotation locality ablation "
        f"({NUM_ANNOTATIONS} annotations x {CELLS_PER_ANNOTATION} cells)",
        ["scattered cells", "naive records", "compact records",
         "naive pages", "compact pages", "compact advantage"], rows)
    # The naive scheme always stores one record per cell.
    assert all(r["naive_records"] == NUM_ANNOTATIONS * CELLS_PER_ANNOTATION
               for r in sweep_results)
    # With fully contiguous annotations the compact scheme wins by a large
    # factor; with fully scattered cells it degrades to roughly per-cell cost.
    contiguous, scattered = sweep_results[0], sweep_results[-1]
    assert contiguous["compact_records"] <= NUM_ANNOTATIONS * 2
    assert scattered["compact_records"] > contiguous["compact_records"] * 5
    # The advantage shrinks monotonically (allowing small noise).
    advantages = [r["naive_records"] / r["compact_records"] for r in sweep_results]
    assert advantages[0] > advantages[-1]


def test_bench_compact_attach_contiguous(benchmark):
    rng = random.Random(1)
    db = make_db()
    store = create_linkage_store("compact", db.catalog, "__bench_attach_block")
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        store.attach(counter["i"], cells_with_scatter(rng, 0.0))

    benchmark(run)


def test_bench_compact_attach_scattered(benchmark):
    rng = random.Random(1)
    db = make_db()
    store = create_linkage_store("compact", db.catalog, "__bench_attach_scatter")
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        store.attach(counter["i"], cells_with_scatter(rng, 1.0))

    benchmark(run)
