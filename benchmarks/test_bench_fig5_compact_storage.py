"""E2 — Figure 5: compact rectangle storage vs the naive per-cell scheme.

The paper argues that storing annotations per cell is wasteful for
coarse-granularity annotations (A2 and B3 are repeated 6 and 5 times in
Figure 3) and proposes viewing the table as a 2-D space and storing
rectangles.  This benchmark attaches the same mix of table/column/tuple/cell
annotations under both schemes and reports linkage records, linkage pages,
and the I/O needed to build the propagation index.
"""

from __future__ import annotations

import pytest

from bench_utils import make_db, print_table
from repro.workloads import build_gene_tables

NUM_GENES = 150


def load(scheme: str):
    db = make_db(scheme=scheme)
    build_gene_tables(db, num_genes=NUM_GENES, overlap=0.5, seed=13,
                      annotation_scheme=scheme)
    table = db.annotations.get("DB2_Gene", "GAnnotation")
    return db, table


def measure(scheme: str):
    db, table = load(scheme)
    db.reset_io_statistics()
    db.catalog.pool.clear()
    index = table.linkage.load_index()
    io = db.io_statistics().page_reads
    return {
        "scheme": scheme,
        "annotations": table.annotation_count(),
        "linkage_records": table.linkage_record_count(),
        "linkage_pages": table.linkage.num_pages(),
        "index_build_page_reads": io,
        "index": index,
    }


@pytest.fixture(scope="module")
def measurements():
    return measure("naive"), measure("compact")


def test_compact_scheme_uses_fewer_records_and_io(measurements):
    naive, compact = measurements
    # The annotations themselves are identical ...
    assert naive["annotations"] == compact["annotations"]
    # ... but the compact scheme stores far fewer linkage records (the paper's
    # point: one record per rectangle instead of one per cell) ...
    assert compact["linkage_records"] < naive["linkage_records"] / 5
    # ... and occupies no more pages / I/O to load.
    assert compact["linkage_pages"] <= naive["linkage_pages"]
    assert compact["index_build_page_reads"] <= naive["index_build_page_reads"]
    print_table(
        "E2/Figure 5 — annotation linkage storage (DB2_Gene.GAnnotation, "
        f"{NUM_GENES} genes)",
        ["scheme", "annotations", "linkage records", "linkage pages",
         "index-build page reads"],
        [[m["scheme"], m["annotations"], m["linkage_records"], m["linkage_pages"],
          m["index_build_page_reads"]] for m in measurements],
    )


def test_bench_naive_propagation_query(benchmark):
    db, _ = load("naive")
    result = benchmark(
        db.query, "SELECT GID, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)"
    )
    assert len(result) == NUM_GENES


def test_bench_compact_propagation_query(benchmark):
    db, _ = load("compact")
    result = benchmark(
        db.query, "SELECT GID, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)"
    )
    assert len(result) == NUM_GENES
