"""Benchmarks for the foreign-table subsystem (``foreign_scan`` series).

Two headline comparisons:

* **CSV pushdown vs. full transfer** — a selective filter over a 100k-row
  attached CSV with provider pushdown on (the provider probes the filter
  columns and skips full decode of non-matching rows) vs. ``pushdown false``
  (every row is decoded, shipped to the engine, and filtered there).  The
  ISSUE-10 acceptance bar is >= 2x.
* **repro-provider join vs. native join** — the same star join executed
  against an ATTACHed database file and against the same data loaded
  natively, quantifying the provider-boundary overhead.

Results are persisted to ``BENCH_streaming.json`` under ``foreign_scan_*``
keys via :func:`bench_utils.write_bench_results`.
"""

from __future__ import annotations

import time

import pytest

from repro import Database

from bench_utils import print_table, write_bench_results


def best_of(db: Database, query: str, repeats: int = 3) -> dict:
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = db.query(query)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return {"seconds": round(best, 6), "rows": len(result)}


def csv_pushdown_db(tmp_path, rows: int, pushdown: bool) -> Database:
    path = tmp_path / f"wide_{pushdown}.csv"
    with open(path, "w") as handle:
        handle.write("id,kind,v,payload,extra\n")
        for i in range(rows):
            handle.write(f"{i},k{i % 50},{i * 0.5},"
                         f"payload-{i}-{'x' * 80},{i * 7}\n")
    db = Database()
    option = "" if pushdown else ", pushdown false"
    db.execute(f"ATTACH '{path}' AS wide (TYPE csv{option})")
    return db


def run_csv_pushdown(tmp_path, rows: int, label: str) -> dict:
    """Selective filter (~2% of rows) over an attached CSV: provider-side
    filtering vs. full transfer + engine-side residual filter."""
    query = "SELECT id, v FROM wide WHERE kind = 'k7'"
    pushed_db = csv_pushdown_db(tmp_path, rows, pushdown=True)
    full_db = csv_pushdown_db(tmp_path, rows, pushdown=False)
    series = {
        "pushdown": best_of(pushed_db, query),
        "full_transfer": best_of(full_db, query),
    }
    series["speedup"] = round(series["full_transfer"]["seconds"]
                              / series["pushdown"]["seconds"], 2)
    assert "[pushed: kind = 'k7']" in pushed_db.explain(query).message
    assert "[pushdown: off]" in full_db.explain(query).message
    print_table(
        f"foreign CSV scan, {rows} rows, ~2% selective filter ({label})",
        ["series", "seconds", "rows"],
        [[name, f"{m['seconds']:.4f}", m["rows"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    print(f"  speedup (full transfer / pushdown): {series['speedup']}x")
    # Identical answers regardless of where the filter ran.
    assert series["pushdown"]["rows"] == series["full_transfer"]["rows"] \
        == rows // 50
    pushed_db.close()
    full_db.close()
    return series


def run_repro_join(tmp_path, facts: int, label: str) -> dict:
    """Star join against an ATTACHed repro database vs. the same data
    loaded natively."""
    remote_path = str(tmp_path / "dim.db")
    dims = max(16, facts // 100)
    with Database(remote_path) as remote:
        remote.execute("CREATE TABLE dim (did INTEGER, tag TEXT)")
        table = remote.table("dim")
        for i in range(dims):
            table.insert_row({"did": i, "tag": f"t{i % 5}"})

    query = ("SELECT f.fid, d.tag FROM fact f, dim d "
             "WHERE f.did = d.did AND d.tag = 't2'")

    def fact_db() -> Database:
        db = Database()
        db.execute("CREATE TABLE fact (fid INTEGER PRIMARY KEY, did INTEGER)")
        table = db.table("fact")
        for i in range(facts):
            table.insert_row({"fid": i, "did": i % dims})
        db.analyze("fact")
        return db

    foreign_db = fact_db()
    foreign_db.execute(f"ATTACH '{remote_path}' AS dim (TYPE repro)")

    native_db = fact_db()
    native_db.execute("CREATE TABLE dim (did INTEGER, tag TEXT)")
    table = native_db.table("dim")
    for i in range(dims):
        table.insert_row({"did": i, "tag": f"t{i % 5}"})
    native_db.analyze("dim")

    series = {
        "foreign_dim_join": best_of(foreign_db, query),
        "native_dim_join": best_of(native_db, query),
    }
    series["overhead_factor"] = round(
        series["foreign_dim_join"]["seconds"]
        / series["native_dim_join"]["seconds"], 2)
    print_table(
        f"star join, {facts} facts x {dims} dims, dim foreign vs native "
        f"({label})",
        ["series", "seconds", "rows"],
        [[name, f"{m['seconds']:.4f}", m["rows"]]
         for name, m in series.items() if isinstance(m, dict)],
    )
    print(f"  provider-boundary overhead: {series['overhead_factor']}x")
    assert series["foreign_dim_join"]["rows"] \
        == series["native_dim_join"]["rows"] > 0
    foreign_db.close()
    native_db.close()
    return series


def test_foreign_csv_pushdown_smoke(tmp_path):
    """The ISSUE-10 acceptance number at full size (the scan is cheap enough
    to keep in the smoke tier): provider-side filtering >= 2x full transfer
    on a 100k-row CSV."""
    series = run_csv_pushdown(tmp_path, 100_000, "smoke")
    assert series["speedup"] >= 2.0
    write_bench_results("streaming", {"foreign_scan_csv_pushdown_100k": series})


def test_foreign_repro_join_smoke(tmp_path):
    series = run_repro_join(tmp_path, 5_000, "smoke")
    write_bench_results("streaming", {"foreign_scan_repro_join_5k": series})


@pytest.mark.slow
def test_foreign_repro_join_full(tmp_path):
    series = run_repro_join(tmp_path, 50_000, "full")
    write_bench_results("streaming", {"foreign_scan_repro_join_50k": series})
