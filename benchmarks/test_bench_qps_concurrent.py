"""Concurrent query throughput through the network front end.

``N`` client threads each open one network connection and run a loop of
point-lookup queries (``SELECT ... WHERE id = ?``) against a shared server.
The measured number is end-to-end queries/sec through the full stack:
wire framing, admission control, the worker pool, the reader-writer lock,
and result encoding.  Concurrent *readers* share the lock, so added clients
should overlap their network and framing time inside the server instead of
queueing behind a global mutex.

What the benchmark asserts depends on the host:

* Everywhere: the per-query overhead of concurrency stays bounded — 10
  clients must retain at least 40% of single-client throughput (a global
  serialization bug shows up as far worse than that), and every query
  returns the right row.
* On hosts with >= 2 CPUs: aggregate throughput at 10 clients must beat a
  single client by >= 1.5x.  On a 1-CPU host the interpreter serializes the
  work and there is no parallel speedup to claim, so the scaling assertion
  is skipped rather than encoding a lie.

The quick smoke variant (tier-1 and the bench-regression gate) runs 1 and
10 clients; the full variant (``--runslow``) sweeps 1/10/100.  Results are
persisted to ``BENCH_streaming.json`` under ``qps_concurrent``.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

import repro.client
from repro.server import ServerConfig, start_server

from bench_utils import print_table, write_bench_results

ROWS = 1000


def run_qps(clients: int, queries_per_client: int) -> dict:
    """Queries/sec of ``clients`` threads doing point lookups."""
    server = start_server(config=ServerConfig(
        max_connections=clients + 2,
        max_inflight=max(8, clients),
        worker_threads=min(8, max(2, clients))))
    try:
        seed = repro.client.connect(port=server.port)
        seed.execute("CREATE TABLE bench (id INTEGER PRIMARY KEY, v TEXT)")
        seed.cursor().executemany(
            "INSERT INTO bench VALUES (?, ?)",
            [(i, f"v{i}") for i in range(ROWS)])
        seed.close()

        connections = [repro.client.connect(port=server.port)
                       for _ in range(clients)]
        barrier = threading.Barrier(clients + 1)
        errors = []

        def worker(conn, base):
            try:
                cursor = conn.cursor()
                barrier.wait()
                for i in range(queries_per_client):
                    key = (base + i * 7) % ROWS
                    cursor.execute("SELECT v FROM bench WHERE id = ?",
                                   (key,))
                    (value,) = cursor.fetchone()
                    assert value == f"v{key}"
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(conn, k * 131))
                   for k, conn in enumerate(connections)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert errors == [], errors[:3]
        for conn in connections:
            conn.close()
        queries = clients * queries_per_client
        return {
            "clients": clients,
            "queries": queries,
            "seconds": round(elapsed, 6),
            "qps": round(queries / elapsed, 1),
        }
    finally:
        server.shutdown()


def run_sweep(client_counts, total_queries: int) -> dict:
    series = {}
    for clients in client_counts:
        series[f"clients_{clients}"] = run_qps(
            clients, max(1, total_queries // clients))
    return series


def print_series(title: str, series: dict) -> None:
    print_table(
        title,
        ["clients", "queries", "seconds", "qps"],
        [[s["clients"], s["queries"], s["seconds"], s["qps"]]
         for s in series.values()],
    )


def check_scaling(series: dict, many: str) -> None:
    """The host-conditional assertions shared by smoke and full runs."""
    one = series["clients_1"]["qps"]
    concurrent = series[many]["qps"]
    # Bounded overhead everywhere: concurrency must not collapse throughput.
    assert concurrent >= 0.4 * one, (
        f"{series[many]['clients']} clients fell to {concurrent} qps "
        f"vs {one} single-client — concurrency is serializing badly")
    if (os.cpu_count() or 1) >= 2:
        assert concurrent >= 1.5 * one, (
            f"expected >=1.5x scaling at {series[many]['clients']} "
            f"clients on a multi-core host; got {concurrent} vs {one} qps")


def test_qps_concurrent_smoke():
    """Tier-1 shape check: correctness under concurrency, bounded overhead."""
    series = run_sweep([1, 10], total_queries=300)
    print_series("network qps (smoke, 1 vs 10 clients)", series)
    check_scaling(series, "clients_10")
    write_bench_results("streaming", {"qps_concurrent_smoke": series})


@pytest.mark.slow
def test_qps_concurrent_sweep():
    """Full sweep: 1/10/100 clients at a fixed total query budget."""
    series = run_sweep([1, 10, 100], total_queries=4000)
    print_series("network qps (1/10/100 clients)", series)
    check_scaling(series, "clients_10")
    check_scaling(series, "clients_100")
    write_bench_results("streaming", {"qps_concurrent": series})
