"""Join-strategy benchmark: hash / merge vs the naive nested-loop pipeline.

A 2k x 2k equi-join is O(n*m) under the naive cross-product pipeline and
O(n + m) under the hash join.  The benchmark times the same A-SQL query under
every strategy and asserts the cost-based layer's headline win: the hash join
must beat nested loop by at least 5x (it is typically >100x).

Marked ``slow`` (run with ``pytest --runslow``): the nested-loop baseline
alone evaluates 4 million tuple pairs.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import make_db, print_table
from repro.planner.plan import plan_strategies

ROWS = 2000
QUERY = ("SELECT b.id, p.pid FROM build_side b, probe_side p "
         "WHERE b.id = p.fk")


def _load():
    db = make_db()
    db.execute("CREATE TABLE build_side (id INTEGER PRIMARY KEY, payload TEXT)")
    db.execute("CREATE TABLE probe_side (pid INTEGER PRIMARY KEY, fk INTEGER, "
               "payload TEXT)")
    build = db.table("build_side")
    probe = db.table("probe_side")
    for i in range(ROWS):
        build.insert_row({"id": i, "payload": f"b{i}"})
    for i in range(ROWS):
        probe.insert_row({"pid": i, "fk": i, "payload": f"p{i}"})
    db.execute("ANALYZE")
    return db


def _time_query(db, strategy):
    db.config.join_strategy = strategy
    start = time.perf_counter()
    result = db.query(QUERY)
    elapsed = time.perf_counter() - start
    return elapsed, result


@pytest.mark.slow
def test_hash_join_beats_nested_loop_by_5x():
    db = _load()
    timings = {}
    results = {}
    for strategy in ("nested_loop", "hash", "merge", "auto"):
        timings[strategy], results[strategy] = _time_query(db, strategy)
    rows = [[strategy, f"{elapsed * 1000:.1f}",
             f"{timings['nested_loop'] / elapsed:.1f}x"]
            for strategy, elapsed in timings.items()]
    print_table(f"Join strategies — {ROWS}x{ROWS} equi-join",
                ["strategy", "ms", "speedup vs nested loop"], rows)

    # All strategies agree on the answer.
    expected = sorted(results["nested_loop"].values())
    for strategy in ("hash", "merge", "auto"):
        assert sorted(results[strategy].values()) == expected
    assert len(results["hash"]) == ROWS

    # The observability surface reports what actually ran.
    db.config.join_strategy = "auto"
    db.query(QUERY)
    assert plan_strategies(db.engine.last_plan) == ["hash"]

    # Headline acceptance: >= 5x.
    assert timings["hash"] * 5 <= timings["nested_loop"], (
        f"hash join only {timings['nested_loop'] / timings['hash']:.1f}x faster")
    # Merge join should also comfortably beat the naive pipeline.
    assert timings["merge"] * 5 <= timings["nested_loop"]
