"""E4 — Figure 8: provenance at multiple granularities.

Loads one table from multiple sources (S1, S2, local inserts), lets a program
P1 update part of it and a source S3 overwrite a column, then answers the
figure's question — "what is the source of this value at time T?" — for a
sweep of times, and times the point-in-time lookup.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from bench_utils import make_db, print_table
from repro.workloads import dna_sequence
import random

NUM_ROWS = 120


@pytest.fixture(scope="module")
def loaded():
    db = make_db()
    rng = random.Random(41)
    db.execute("CREATE TABLE Assembly (AID TEXT PRIMARY KEY, Contig SEQUENCE, "
               "Quality FLOAT)")
    for index in range(NUM_ROWS):
        db.execute(
            f"INSERT INTO Assembly VALUES ('A{index:04d}', "
            f"'{dna_sequence(40, rng)}', {rng.random():.3f})"
        )
    tuple_ids = db.table("Assembly").tuple_ids
    half = tuple_ids[: NUM_ROWS // 2]
    rest = tuple_ids[NUM_ROWS // 2:]
    # S1 contributed the first half, S2 the second half (tuple granularity).
    db.provenance.record("Assembly", db.annotations.cells_for("Assembly", half),
                         source="S1", operation="copy", time=datetime(2005, 1, 1))
    db.provenance.record("Assembly", db.annotations.cells_for("Assembly", rest),
                         source="S2", operation="copy", time=datetime(2005, 6, 1))
    # Program P1 updated Quality for every tuple (column granularity).
    db.provenance.record("Assembly",
                         db.annotations.cells_for("Assembly", columns=["Quality"]),
                         source="P1", operation="update", program="P1",
                         time=datetime(2006, 3, 1))
    # Source S3 overwrote the Contig column (column granularity).
    db.provenance.record("Assembly",
                         db.annotations.cells_for("Assembly", columns=["Contig"]),
                         source="S3", operation="overwrite", time=datetime(2007, 1, 1))
    return db


def test_source_at_time_matches_figure8_story(loaded):
    db = loaded
    tuple_ids = db.table("Assembly").tuple_ids
    early, late = tuple_ids[0], tuple_ids[-1]
    probes = [
        ("Contig of an S1 row, before P1/S3", early, "Contig", datetime(2005, 2, 1), "S1"),
        ("Contig of an S2 row, before S3", late, "Contig", datetime(2006, 1, 1), "S2"),
        ("Quality after P1 ran", early, "Quality", datetime(2006, 6, 1), "P1"),
        ("Contig after S3 overwrote it", late, "Contig", None, "S3"),
    ]
    rows = []
    for label, tuple_id, column, at_time, expected in probes:
        record = db.provenance.source_at("Assembly", tuple_id, column, at_time)
        rows.append([label, at_time or "latest", record.source])
        assert record.source == expected
    print_table("E4/Figure 8 — source of a value at time T",
                ["probe", "time", "source"], rows)
    counts = db.provenance.sources_of_table("Assembly")
    assert set(counts) == {"S1", "S2", "P1", "S3"}


def test_provenance_propagates_and_filters(loaded):
    db = loaded
    result = db.query(
        "SELECT AID, Quality FROM Assembly ANNOTATION(provenance) "
        "AWHERE annotation.value LIKE '%P1%'"
    )
    assert len(result) == NUM_ROWS


def test_bench_point_in_time_lookup(benchmark, loaded):
    db = loaded
    tuple_id = db.table("Assembly").tuple_ids[10]
    record = benchmark(db.provenance.source_at, "Assembly", tuple_id, "Contig",
                       datetime(2006, 1, 1))
    assert record.source == "S1"


def test_bench_full_history(benchmark, loaded):
    db = loaded
    tuple_id = db.table("Assembly").tuple_ids[10]
    history = benchmark(db.provenance.history, "Assembly", tuple_id, "Contig")
    assert [r.source for r in history] == ["S1", "S3"]
